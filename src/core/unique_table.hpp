// Per-variable unique table (paper Section 3.2), with optional lock
// striping (the paper's proposed future work, Section 6).
//
// One instance per variable, shared by all workers. Chains run through the
// nodes' `next` fields and may cross worker arenas.
//
// Two locking disciplines, selected by the shard count:
//
//  * shards == 1 — the paper's layout: one lock per variable, acquired once
//    per (worker, variable) reduction pass; all of that worker's nodes for
//    the variable are produced under a single acquisition. Simple and
//    cheap per node, but Figs. 16/17 show it serializing the reduction on
//    the node-heavy variables.
//
//  * shards > 1 — the "better distributed hashing" the paper calls for: the
//    bucket array is split into hash-selected segments, each with its own
//    lock, and find_or_insert locks only its segment. Workers producing
//    nodes for the same variable now contend only on hash collisions
//    between segments (bench/ablate_table_sharding quantifies the effect).
//
// Lock-acquire wait time is metered per worker in both modes (Fig. 16/17).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/node_arena.hpp"
#include "core/ref.hpp"
#include "runtime/inject.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace pbdd::core {

class VarUniqueTable {
 public:
  void init(unsigned var, std::vector<NodeArena*> arenas,
            std::size_t initial_buckets, unsigned shards = 1) {
    var_ = var;
    arenas_ = std::move(arenas);
    assert(shards >= 1 && (shards & (shards - 1)) == 0);
    segments_ = std::vector<Segment>(shards);
    const std::size_t per_segment =
        std::max<std::size_t>(initial_buckets / shards, 16);
    for (Segment& segment : segments_) {
      segment.buckets.assign(per_segment, kZero);
      segment.mask = per_segment - 1;
    }
    shard_shift_ = 0;
    while ((1u << shard_shift_) < shards) ++shard_shift_;
    wait_ns_.assign(arenas_.size(), 0);
  }

  [[nodiscard]] bool sharded() const noexcept {
    return segments_.size() > 1;
  }
  [[nodiscard]] unsigned shards() const noexcept {
    return static_cast<unsigned>(segments_.size());
  }

  // ---- Pass-level locking (shards == 1, the paper's discipline) ------------

  /// Acquire the per-variable lock, charging the wait to `worker`.
  void acquire(unsigned worker) { lock_timed(segments_[0], worker); }

  /// Non-blocking acquire, used by the GC rehash phase: a worker finding a
  /// variable's table locked rehashes other variables first (Section 3.4).
  [[nodiscard]] bool try_acquire() { return segments_[0].mutex.try_lock(); }

  void release() { segments_[0].mutex.unlock(); }

  /// Find-or-create the node (var_, low, high), allocating in `worker`'s
  /// arena on a miss. Pass-level mode: caller holds the variable lock.
  /// Sharded mode: locks the owning segment internally.
  NodeRef find_or_insert(unsigned worker, NodeRef low, NodeRef high,
                         bool& created) {
    const std::uint64_t h = util::hash_pair(low, high);
    Segment& segment = segment_for(h);
    if (sharded()) {
      lock_timed(segment, worker);
      const NodeRef r = find_or_insert_in(segment, h, worker, low, high,
                                          created);
      segment.mutex.unlock();
      return r;
    }
    return find_or_insert_in(segment, h, worker, low, high, created);
  }

  // ---- GC rehash support ----------------------------------------------------

  /// Drop all chains (nodes are re-inserted afterwards). Stop-the-world.
  void reset_chains(std::size_t live_hint) {
    const std::size_t hint_per_segment =
        std::max<std::size_t>(live_hint / segments_.size(), 1);
    for (Segment& segment : segments_) {
      std::size_t size = segment.buckets.size();
      while (size > 256 && size > hint_per_segment * 4) size /= 2;
      while (size < hint_per_segment) size *= 2;
      segment.buckets.assign(size, kZero);
      segment.mask = size - 1;
      segment.count = 0;
    }
  }

  /// Insert a node whose fields are already final. Pass-level mode: caller
  /// holds the lock. Sharded mode: locks the segment internally.
  void reinsert(unsigned worker, NodeRef r, NodeRef low, NodeRef high) {
    const std::uint64_t h = util::hash_pair(low, high);
    Segment& segment = segment_for(h);
    if (sharded()) lock_timed(segment, worker);
    const std::size_t bucket = (h >> shard_shift_) & segment.mask;
    node(r).next = segment.buckets[bucket];
    segment.buckets[bucket] = r;
    ++segment.count;
    if (sharded()) segment.mutex.unlock();
  }

  // ---- Introspection ---------------------------------------------------------

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const Segment& segment : segments_) total += segment.count;
    return total;
  }
  /// High-water mark of count(). With sharding this is the sum of the
  /// per-segment high-water marks (a slight overestimate when segments
  /// peak at different times); exact in the default one-shard mode used by
  /// the Fig. 15 harness.
  [[nodiscard]] std::size_t max_count() const noexcept {
    std::size_t total = 0;
    for (const Segment& segment : segments_) total += segment.max_count;
    return total;
  }
  [[nodiscard]] std::size_t buckets() const noexcept {
    std::size_t total = 0;
    for (const Segment& segment : segments_) total += segment.buckets.size();
    return total;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    std::size_t total = wait_ns_.capacity() * sizeof(std::uint64_t);
    for (const Segment& segment : segments_) {
      total += segment.buckets.capacity() * sizeof(NodeRef);
    }
    return total;
  }
  [[nodiscard]] std::uint64_t lock_wait_ns(unsigned worker) const noexcept {
    return wait_ns_[worker];
  }
  [[nodiscard]] std::uint64_t lock_wait_ns_total() const noexcept {
    std::uint64_t total = 0;
    for (auto w : wait_ns_) total += w;
    return total;
  }
  void reset_lock_waits() noexcept {
    for (auto& w : wait_ns_) w = 0;
  }

 private:
  struct Segment {
    std::mutex mutex;
    std::vector<NodeRef> buckets;
    std::size_t mask = 0;
    std::size_t count = 0;
    std::size_t max_count = 0;
  };

  [[nodiscard]] Segment& segment_for(std::uint64_t hash) noexcept {
    // Low bits select the segment; the remaining bits index its buckets.
    return segments_[hash & (segments_.size() - 1)];
  }

  void lock_timed(Segment& segment, unsigned worker) {
    PBDD_INJECT(kTableAcquire);
    if (segment.mutex.try_lock()) return;
    util::WallTimer timer;
    segment.mutex.lock();
    wait_ns_[worker] += timer.elapsed_ns();
  }

  NodeRef find_or_insert_in(Segment& segment, std::uint64_t h,
                            unsigned worker, NodeRef low, NodeRef high,
                            bool& created) {
    assert(low != high);
    PBDD_INJECT(kTableInsert);
    const std::size_t bucket = (h >> shard_shift_) & segment.mask;
    for (NodeRef r = segment.buckets[bucket]; r != kZero;) {
      const BddNode& n = node(r);
      if (n.low == low && n.high == high) {
        created = false;
        return r;
      }
      r = n.next;
    }
    const std::uint32_t slot = arenas_[worker]->alloc();
    BddNode& n = arenas_[worker]->at_own(slot);
    const NodeRef r = make_node_ref(worker, var_, slot);
    n.low = low;
    n.high = high;
    n.next = segment.buckets[bucket];
    n.aux.store(0, std::memory_order_relaxed);
    segment.buckets[bucket] = r;
    ++segment.count;
    if (segment.count > segment.max_count) segment.max_count = segment.count;
    if (segment.count > segment.buckets.size() * 2) {
      grow(segment, segment.buckets.size() * 2);
    } else if (PBDD_INJECT_QUERY(kForceTableGrow)) {
      // Same-size rehash: exercises the full chain-rebuild path (the thing
      // concurrent readers would trip over) without compounding growth.
      grow(segment, segment.buckets.size());
    }
    created = true;
    return r;
  }

  void grow(Segment& segment, std::size_t new_size) {
    PBDD_INJECT(kTableGrow);
    std::vector<NodeRef> fresh(new_size, kZero);
    const std::size_t new_mask = new_size - 1;
    for (NodeRef head : segment.buckets) {
      while (head != kZero) {
        BddNode& n = node(head);
        const NodeRef next = n.next;
        const std::size_t bucket =
            (util::hash_pair(n.low, n.high) >> shard_shift_) & new_mask;
        n.next = fresh[bucket];
        fresh[bucket] = head;
        head = next;
      }
    }
    segment.buckets = std::move(fresh);
    segment.mask = new_mask;
  }

  [[nodiscard]] BddNode& node(NodeRef r) const noexcept {
    return arenas_[worker_of(r)]->at(slot_of(r));
  }

  unsigned var_ = 0;
  unsigned shard_shift_ = 0;
  std::vector<NodeArena*> arenas_;  ///< this variable's arena, per worker
  std::vector<Segment> segments_;
  std::vector<std::uint64_t> wait_ns_;  ///< lock wait per worker (Fig. 16)
};

}  // namespace pbdd::core
