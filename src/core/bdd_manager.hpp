// Public API of the parallel partial breadth-first BDD package.
//
// BddManager owns the shared state (per-variable unique tables, the worker
// pool, the root registry for external references) and orchestrates
// top-level operation batches and stop-the-world garbage collection.
// Boolean operations issued through this API are the paper's "top level
// operations"; a batch of independent top-level operations is distributed
// across workers, with group stealing balancing the load inside each one
// (Section 3.3).
//
// Thread-safety contract: the manager parallelizes internally. External
// calls must come from one thread at a time (the typical usage in symbolic
// model checking and circuit sweeps), except that Bdd handles may be copied
// and dropped from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/op.hpp"
#include "core/config.hpp"
#include "core/pager_hook.hpp"
#include "core/ref.hpp"
#include "core/shared_cache.hpp"
#include "core/unique_table.hpp"
#include "core/worker.hpp"
#include "runtime/barrier.hpp"
#include "runtime/worker_pool.hpp"
#include "util/aligned.hpp"

namespace pbdd::core {

class BddManager;

/// RAII external reference to a BDD. Internally an index into the manager's
/// root registry rather than a raw node reference, so the mark-compact
/// collector can relocate nodes without invalidating live handles.
///
/// Lifetime contract (as in every classic BDD package): handles must not
/// outlive their manager — destroy or reset every Bdd before the
/// BddManager is destroyed. Debug builds assert this in ~BddManager.
class Bdd {
 public:
  Bdd() = default;
  Bdd(BddManager* mgr, std::uint32_t root) : mgr_(mgr), root_(root) {}
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), root_(other.root_) {
    other.mgr_ = nullptr;
  }
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  [[nodiscard]] bool valid() const noexcept { return mgr_ != nullptr; }
  [[nodiscard]] BddManager* manager() const noexcept { return mgr_; }

  /// Current node reference. Stable between collections only; prefer
  /// structural comparison via ==, which is safe at any time.
  [[nodiscard]] NodeRef ref() const noexcept;

  [[nodiscard]] bool is_zero() const noexcept { return ref() == kZero; }
  [[nodiscard]] bool is_one() const noexcept { return ref() == kOne; }

  /// Functional equality (canonicity makes it a reference comparison).
  friend bool operator==(const Bdd& a, const Bdd& b) noexcept {
    return a.mgr_ == b.mgr_ &&
           (a.mgr_ == nullptr || a.ref() == b.ref());
  }

  // Operator sugar; see the BddManager methods they forward to.
  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;

 private:
  friend class BddManager;

  BddManager* mgr_ = nullptr;
  std::uint32_t root_ = 0;
};

/// One top-level operation in a batch. Operands come either from handles
/// (`f`/`g`) or — when `f_dep`/`g_dep` is >= 0 — from the result of an
/// *earlier* item of the same batch, turning the batch into a dependency
/// DAG. Forward references are rejected (execute_batch validates
/// dep < own index), so the DAG is acyclic by construction and a worker
/// claiming an item whose dependency is still in flight stalls-and-steals
/// exactly like a reduction stall. This is what lets a whole circuit window
/// or a fault wave's cones+miters+fold go out as one batch instead of
/// serializing at every level barrier.
struct BatchOp {
  Op op;
  Bdd f;
  Bdd g;
  std::int32_t f_dep = -1;  ///< index of an earlier item producing operand f
  std::int32_t g_dep = -1;  ///< index of an earlier item producing operand g
};

/// Cooperative cancellation and deadline control for one batch. The service
/// layer arms one of these per request; workers poll it at item-claim
/// checkpoints in run_batch, so an expired or cancelled batch stops claiming
/// work and releases its partial results instead of running to completion.
/// Items already being evaluated finish (aborting mid-expansion would leave
/// operator queues inconsistent); items claimed after expiry are skipped and
/// counted in `skipped`, and their result handles stay empty.
struct BatchControl {
  /// Set (by any thread) to abandon the batch at the next checkpoint.
  std::atomic<bool> cancel{false};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Items skipped without evaluation; nonzero means the batch was cut short.
  std::atomic<std::uint32_t> skipped{0};

  void arm_deadline(std::chrono::steady_clock::time_point d) noexcept {
    has_deadline = true;
    deadline = d;
  }
  /// Checkpoint predicate (relaxed: a late claim racing the flag is benign).
  [[nodiscard]] bool expired() const noexcept {
    return cancel.load(std::memory_order_relaxed) ||
           (has_deadline && std::chrono::steady_clock::now() >= deadline);
  }
};

class BddManager {
 public:
  explicit BddManager(unsigned num_vars, Config config = {});
  /// Debug builds assert that no external Bdd handles are still alive
  /// (a surviving handle would dereference freed memory on destruction).
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  // ---- Constants and variables --------------------------------------------
  [[nodiscard]] Bdd zero() { return make_root(kZero); }
  [[nodiscard]] Bdd one() { return make_root(kOne); }
  [[nodiscard]] Bdd var(unsigned v);
  [[nodiscard]] Bdd nvar(unsigned v);

  // ---- Boolean operations --------------------------------------------------
  [[nodiscard]] Bdd apply(Op op, const Bdd& f, const Bdd& g);
  /// Execute a batch of independent top-level operations in parallel. This
  /// is the parallel entry point: operations are dealt to workers and load
  /// is balanced by group stealing.
  [[nodiscard]] std::vector<Bdd> apply_batch(std::span<const BatchOp> batch);
  /// Batch execution under external control: `control` (optional, may be
  /// null) carries a cancellation flag and deadline that workers poll at
  /// item-claim checkpoints. Skipped items return invalid handles.
  [[nodiscard]] std::vector<Bdd> apply_batch(std::span<const BatchOp> batch,
                                             BatchControl* control);
  [[nodiscard]] Bdd not_(const Bdd& f);
  [[nodiscard]] Bdd ite(const Bdd& c, const Bdd& t, const Bdd& e);
  [[nodiscard]] Bdd restrict_(const Bdd& f, unsigned v, bool value);
  [[nodiscard]] Bdd exists(const Bdd& f, const std::vector<unsigned>& vars);
  [[nodiscard]] Bdd forall(const Bdd& f, const std::vector<unsigned>& vars);
  /// Relational product: exists(vars, f AND g) in one pass, without ever
  /// materializing the conjunction — the workhorse of symbolic reachability
  /// (image computation), where f AND g can be orders of magnitude larger
  /// than the quantified result. Early-exits on 1 under each quantified
  /// variable.
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g,
                               const std::vector<unsigned>& vars);
  [[nodiscard]] Bdd compose(const Bdd& f, unsigned v, const Bdd& g);

  // ---- Queries --------------------------------------------------------------
  [[nodiscard]] double sat_count(const Bdd& f);
  [[nodiscard]] std::optional<std::vector<std::int8_t>> sat_one(const Bdd& f);
  [[nodiscard]] bool eval(const Bdd& f, const std::vector<bool>& assignment);
  [[nodiscard]] std::vector<unsigned> support(const Bdd& f);
  [[nodiscard]] std::size_t node_count(const Bdd& f);

  // ---- Memory management ----------------------------------------------------
  /// Stop-the-world parallel mark-compact collection (Section 3.4).
  void gc();
  /// Run gc() if the auto-GC condition holds. Returns true if it ran.
  bool maybe_gc();

  [[nodiscard]] std::size_t live_nodes() const noexcept;
  [[nodiscard]] std::size_t bytes() const noexcept;
  /// High-water mark of bytes(), sampled at every batch barrier (the
  /// paper's memory-usage numbers, Figs. 9/10).
  [[nodiscard]] std::size_t peak_bytes() const noexcept {
    return peak_bytes_;
  }
  [[nodiscard]] std::uint64_t gc_runs() const noexcept { return gc_runs_; }

  // ---- Out-of-core paging (src/ooc/) ----------------------------------------
  /// Attach/detach the paging tier. Must be called with no batch in flight
  /// and every level resident (i.e. before first use, or at a quiet point).
  void attach_pager(PagerHook* pager) noexcept { pager_ = pager; }
  [[nodiscard]] PagerHook* pager() const noexcept { return pager_; }
  [[nodiscard]] bool paged() const noexcept { return pager_ != nullptr; }

  /// Fault barrier: guarantee level `var` is resident before any of its
  /// nodes is dereferenced or inserted. One branch when no pager is
  /// attached; one acquire load when the level is resident.
  void touch_level(unsigned var) const {
    if (pager_ != nullptr) pager_->touch_level(var);
  }
  /// Fault every spilled level back in (whole-store walks: queries, GC,
  /// snapshot save, DOT export).
  void ensure_all_resident() const {
    if (pager_ != nullptr) pager_->ensure_all_resident();
  }

  // ---- Snapshot support (src/snapshot/) -------------------------------------
  /// Run `fn(worker_id)` on every pool worker; the caller executes worker 0
  /// and the call blocks until all workers finish. Stop-the-world helper for
  /// the snapshot subsystem: the external-call contract applies, and `fn`
  /// partitions its own work (typically variables round-robin by id).
  void run_on_workers(const std::function<void(unsigned)>& fn);

  /// Set the aux mark bit on every node reachable from `roots`, in parallel
  /// on the pool — the collector's mark phase run standalone. The snapshot
  /// writer's reachable-only export walks these marks (and stashes dense
  /// local ids in the aux words, exactly like gc_forward). Callers must
  /// clear the marks with snapshot_clear_marks() before any other engine
  /// activity.
  void snapshot_mark(std::span<const NodeRef> roots);
  /// Zero every node's aux word (marks and stashed local ids).
  void snapshot_clear_marks();

  // ---- Statistics -----------------------------------------------------------
  [[nodiscard]] ManagerStats stats() const;
  /// Clear phase timers, lock-wait tables, and per-worker counters (used by
  /// benchmark harnesses between measurement sections).
  void reset_stats();
  [[nodiscard]] std::vector<std::size_t> max_nodes_per_var() const;
  [[nodiscard]] std::vector<std::uint64_t> lock_wait_per_var_ns() const;

  // ---- Root registry (used by the Bdd handle) -------------------------------
  [[nodiscard]] Bdd make_root(NodeRef ref);
  void root_incref(std::uint32_t root) noexcept;
  void root_decref(std::uint32_t root) noexcept;
  [[nodiscard]] NodeRef root_ref(std::uint32_t root) const noexcept;

  // ---- Internal services for Worker -----------------------------------------
  [[nodiscard]] BddNode& node(NodeRef r) const noexcept {
    return workers_[worker_of(r)]->node_arena(var_of(r)).at(slot_of(r));
  }

  /// Cofactor of f with respect to variable x (Section 2.1: if x is the
  /// root's variable, the cofactor is the child; otherwise f itself).
  [[nodiscard]] NodeRef cofactor(NodeRef f, unsigned x, bool value) const {
    if (level_of(f) != x) return f;
    const BddNode& n = node(f);
    return value ? n.high : n.low;
  }

  [[nodiscard]] VarUniqueTable& unique(unsigned var) noexcept {
    return unique_[var];
  }

  [[nodiscard]] std::uint32_t op_generation() const noexcept {
    return op_generation_;
  }

  /// Shared completed-results cache, or nullptr when disabled (single
  /// worker, or Config::shared_cache_log2 == 0).
  [[nodiscard]] SharedComputeCache* shared_cache() noexcept {
    return shared_cache_.enabled() ? &shared_cache_ : nullptr;
  }

  [[nodiscard]] Worker& worker(unsigned id) noexcept { return *workers_[id]; }

  /// Workers that actively claim batch items and steal groups; workers with
  /// id >= this return from each batch immediately (Config's
  /// max_active_workers oversubscription guard).
  [[nodiscard]] unsigned active_workers() const noexcept {
    return active_workers_;
  }

  // Batch state (read by workers during run_batch). Operands are held as
  // Bdd handles, not raw references: a sequential-mode collection between
  // two top-level operations of the same batch relocates nodes, and the
  // root-registry indirection keeps the pending operands valid.
  struct BatchState {
    struct Item {
      Op op;
      Bdd f, g;
      std::int32_t f_dep = -1;
      std::int32_t g_dep = -1;
    };
    /// Per-item lifecycle for the dependency DAG. `kItemSkipped` cascades:
    /// an item whose dependency was skipped (cancellation) is skipped too,
    /// so no item ever evaluates with a missing operand.
    enum : std::uint8_t { kItemPending = 0, kItemDone = 1, kItemSkipped = 2 };
    std::vector<Item> items;
    std::vector<Bdd> result_handles;
    /// State word per item, written with release after the result handle is
    /// rooted; dependents acquire-load it before reading the handle.
    std::unique_ptr<std::atomic<std::uint8_t>[]> item_state;
    std::size_t item_state_capacity = 0;
    /// External cancellation/deadline control for this batch (may be null).
    BatchControl* control = nullptr;
    // Separate lines: `next` is hammered by every worker claiming items
    // while `completed` is hammered by every worker finishing them; on one
    // line each fetch_add would invalidate the other counter too.
    alignas(util::kCacheLineBytes) std::atomic<std::size_t> next{0};
    alignas(util::kCacheLineBytes) std::atomic<std::size_t> completed{0};
  };
  [[nodiscard]] BatchState& batch() noexcept { return batch_state_; }

  /// Root the result of a batch item as soon as its owner finishes it.
  void register_batch_result(std::size_t index, NodeRef ref);

  /// Low-level find-or-create of one node (locks the variable's table).
  /// Exposed for the utility operations and white-box tests; apply() is the
  /// normal construction path.
  NodeRef mk_node(unsigned var, NodeRef low, NodeRef high);

  /// Count of workers currently finding nothing to steal; busy workers poll
  /// this and context-switch to expose sharable groups (Section 3.3). On
  /// its own cache line: it is polled from every expansion loop, and
  /// sharing a line with neighbouring manager fields would turn their
  /// writes into polling misses.
  alignas(util::kCacheLineBytes) std::atomic<std::uint32_t> hungry_workers{0};

  // ---- Work-epoch wake protocol ---------------------------------------------
  // Every cross-worker publication an idle worker could be waiting for —
  // a context spill exposing stealable groups, a thief's result writeback,
  // a batch item completing or being skipped — bumps this counter and wakes
  // parked waiters. Idle workers capture the epoch *before* scanning for
  // work and futex-park on the captured value, so a publication racing the
  // scan turns the park into an immediate return instead of a lost wakeup.
  // This replaces the old spin/sleep backoff in the stall loops: a worker
  // with nothing to do costs nothing, which is what lets oversubscribed
  // runs (more workers than cores) degrade to parity instead of convoying.

  /// Current epoch; capture before scanning for work.
  [[nodiscard]] std::uint64_t work_epoch() const noexcept {
    return work_epoch_.load(std::memory_order_acquire);
  }

  /// Publish "new work / new result exists": bump and wake all waiters.
  /// libstdc++ tracks waiters per word, so with nobody parked this is one
  /// uncontended load — cheap enough for the steal-writeback path.
  void bump_work_epoch() noexcept {
    work_epoch_.fetch_add(1, std::memory_order_release);
    work_epoch_.notify_all();
  }

  /// Park until the epoch moves past `seen`. Spins briefly first unless the
  /// pool is oversubscribed (then the spin would burn the producer's
  /// timeslice). Returns immediately if the epoch already advanced.
  void wait_for_work(std::uint64_t seen) noexcept {
#ifdef PBDD_TORTURE_ENABLED
    // Serialized torture runs park inside the caller's inject points; a
    // futex wait here would strand the schedule token.
    if (rt::TortureScheduler::instance().enabled()) {
      rt::cpu_relax();
      return;
    }
#endif
    if (!oversubscribed_) {
      for (unsigned i = 0; i < 128; ++i) {
        if (work_epoch_.load(std::memory_order_acquire) != seen) return;
        rt::cpu_relax();
      }
    }
    work_epoch_.wait(seen, std::memory_order_acquire);
  }

  /// True when the pool has more workers than the host has hardware
  /// threads; spin windows are skipped in that regime.
  [[nodiscard]] bool oversubscribed() const noexcept { return oversubscribed_; }

  /// True while the manager must honour cross-worker locking. With a single
  /// worker in sequential mode the per-variable locks are elided.
  [[nodiscard]] bool locking() const noexcept { return locking_; }

 private:
  friend class Worker;

  struct RootEntry {
    NodeRef ref = kInvalid;
    std::atomic<std::uint32_t> rc{0};
    std::uint32_t next_free = 0;
  };

  /// Run a batch of top-level operations; results are registered as roots
  /// before the function returns.
  void execute_batch(std::vector<BatchState::Item> items,
                     std::vector<Bdd>& out, BatchControl* control = nullptr);

  void gc_driver(unsigned worker_id);

  const unsigned num_vars_;
  const Config config_;
  const bool locking_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<VarUniqueTable> unique_;
  rt::WorkerPool pool_;
  rt::PhaseBarrier gc_barrier_;
  SharedComputeCache shared_cache_;
  unsigned active_workers_ = 1;
  bool oversubscribed_ = false;

  alignas(util::kCacheLineBytes) std::atomic<std::uint64_t> work_epoch_{0};

  BatchState batch_state_;
  std::uint32_t op_generation_ = 1;

  // Root registry: deque for stable element addresses (handles touch the
  // atomic refcount without the mutex).
  mutable std::mutex roots_mutex_;
  std::deque<RootEntry> roots_;
  std::uint32_t roots_free_head_ = kNilSlot;

  std::uint64_t gc_runs_ = 0;
  std::size_t live_after_gc_ = 0;
  std::size_t peak_bytes_ = 0;

  /// Out-of-core paging tier, or nullptr (the common case). Not owned.
  PagerHook* pager_ = nullptr;
};

// ---- Bdd inline members (need BddManager complete) --------------------------

inline Bdd::Bdd(const Bdd& other) : mgr_(other.mgr_), root_(other.root_) {
  if (mgr_ != nullptr) mgr_->root_incref(root_);
}

inline Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->root_incref(other.root_);
  if (mgr_ != nullptr) mgr_->root_decref(root_);
  mgr_ = other.mgr_;
  root_ = other.root_;
  return *this;
}

inline Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->root_decref(root_);
  mgr_ = other.mgr_;
  root_ = other.root_;
  other.mgr_ = nullptr;
  return *this;
}

inline Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->root_decref(root_);
}

inline NodeRef Bdd::ref() const noexcept {
  return mgr_ != nullptr ? mgr_->root_ref(root_) : kInvalid;
}

inline Bdd Bdd::operator&(const Bdd& o) const {
  return mgr_->apply(Op::And, *this, o);
}
inline Bdd Bdd::operator|(const Bdd& o) const {
  return mgr_->apply(Op::Or, *this, o);
}
inline Bdd Bdd::operator^(const Bdd& o) const {
  return mgr_->apply(Op::Xor, *this, o);
}
inline Bdd Bdd::operator!() const { return mgr_->not_(*this); }

}  // namespace pbdd::core
