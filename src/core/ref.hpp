// Packed references for the partial breadth-first engine.
//
// Every BDD node lives in the block arena of exactly one (worker, variable)
// pair — the paper's per-process, per-variable node managers — so a node
// reference is a packed integer, not a pointer:
//
//   bit 63      : operator-node tag (Shannon-expansion branch fields may name
//                 either a BDD node or an operator node, Figs. 4-6)
//   bit 62      : internal-BDD tag (distinguishes packed refs from the
//                 terminal constants 0 and 1)
//   bits 48..61 : owning worker id   (up to 16384 workers)
//   bits 32..47 : variable index     (up to 65535 variables)
//   bits  0..31 : slot within the (worker, variable) arena
//
// Index-based references are what make the mark-compact collector's
// fix-references phase (Section 3.4) a pure arithmetic pass, and they keep a
// reference at 8 bytes regardless of pointer width.
#pragma once

#include <cstdint>

namespace pbdd::core {

using NodeRef = std::uint64_t;  ///< terminal constant or internal BDD node
using Ref = std::uint64_t;      ///< NodeRef or operator-node reference

inline constexpr NodeRef kZero = 0;
inline constexpr NodeRef kOne = 1;
inline constexpr Ref kInvalid = ~std::uint64_t{0};

inline constexpr std::uint64_t kOpTag = std::uint64_t{1} << 63;
inline constexpr std::uint64_t kNodeTag = std::uint64_t{1} << 62;

/// Variable index reported for terminals: sorts strictly after every real
/// variable (the terminal "level" of Section 2.1's variable ordering).
inline constexpr unsigned kTermLevel = 0xFFFFu;

[[nodiscard]] constexpr bool is_terminal(Ref r) noexcept { return r <= kOne; }
[[nodiscard]] constexpr bool is_op(Ref r) noexcept {
  return (r & kOpTag) != 0;
}
[[nodiscard]] constexpr bool is_bdd(Ref r) noexcept { return !is_op(r); }
[[nodiscard]] constexpr bool is_internal(Ref r) noexcept {
  return (r & kNodeTag) != 0 && !is_op(r);
}

[[nodiscard]] constexpr Ref make_node_ref(unsigned worker, unsigned var,
                                          std::uint32_t slot) noexcept {
  return kNodeTag | (std::uint64_t{worker} << 48) |
         (std::uint64_t{var} << 32) | slot;
}

[[nodiscard]] constexpr Ref make_op_ref(unsigned worker, unsigned var,
                                        std::uint32_t slot) noexcept {
  return kOpTag | (std::uint64_t{worker} << 48) | (std::uint64_t{var} << 32) |
         slot;
}

[[nodiscard]] constexpr unsigned worker_of(Ref r) noexcept {
  return static_cast<unsigned>((r >> 48) & 0x3FFFu);
}

[[nodiscard]] constexpr unsigned var_of(Ref r) noexcept {
  return static_cast<unsigned>((r >> 32) & 0xFFFFu);
}

[[nodiscard]] constexpr std::uint32_t slot_of(Ref r) noexcept {
  return static_cast<std::uint32_t>(r);
}

/// Variable level for ordering comparisons; terminals sort below everything.
[[nodiscard]] constexpr unsigned level_of(Ref r) noexcept {
  return is_terminal(r) ? kTermLevel : var_of(r);
}

/// Rebuild a BDD reference with a new slot (used when the collector slides a
/// node within its arena).
[[nodiscard]] constexpr NodeRef with_slot(NodeRef r,
                                          std::uint32_t slot) noexcept {
  return (r & ~std::uint64_t{0xFFFFFFFFu}) | slot;
}

}  // namespace pbdd::core
