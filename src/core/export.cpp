#include "core/export.hpp"

#include <ostream>
#include <sstream>
#include <unordered_map>

namespace pbdd::core {

namespace {

/// Stable local ids in first-visit depth-first order, so output does not
/// depend on which worker arena a node happens to live in.
class LocalIds {
 public:
  std::uint64_t id(NodeRef r) {
    const auto [it, inserted] = ids_.emplace(r, next_);
    if (inserted) ++next_;
    return it->second;
  }
  [[nodiscard]] bool seen(NodeRef r) const { return ids_.count(r) != 0; }

 private:
  std::unordered_map<NodeRef, std::uint64_t> ids_;
  std::uint64_t next_ = 2;  // 0/1 reserved for the terminals
};

std::string var_label(const std::vector<std::string>& var_names,
                      unsigned var) {
  if (var < var_names.size()) return var_names[var];
  return "x" + std::to_string(var);
}

}  // namespace

void write_dot(std::ostream& out, BddManager& mgr,
               const std::vector<Bdd>& functions,
               const std::vector<std::string>& names,
               const std::vector<std::string>& var_names) {
  out << "digraph bdd {\n"
      << "  rankdir=TB;\n"
      << "  node [shape=circle];\n"
      << "  t0 [label=\"0\", shape=box];\n"
      << "  t1 [label=\"1\", shape=box];\n";
  LocalIds ids;
  auto node_name = [&](NodeRef r) -> std::string {
    if (r == kZero) return "t0";
    if (r == kOne) return "t1";
    return "n" + std::to_string(ids.id(r));
  };
  auto emit = [&](auto&& self, NodeRef r) -> void {
    if (is_terminal(r) || ids.seen(r)) return;
    const BddNode& n = mgr.node(r);
    const std::string me = node_name(r);
    out << "  " << me << " [label=\"" << var_label(var_names, var_of(r))
        << "\"];\n";
    self(self, n.low);
    self(self, n.high);
    out << "  " << me << " -> " << node_name(n.low) << " [style=dashed];\n";
    out << "  " << me << " -> " << node_name(n.high) << ";\n";
  };
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const NodeRef root = functions[i].ref();
    emit(emit, root);
    const std::string label =
        i < names.size() ? names[i] : ("f" + std::to_string(i));
    out << "  root" << i << " [label=\"" << label
        << "\", shape=plaintext];\n";
    out << "  root" << i << " -> " << node_name(root) << ";\n";
  }
  out << "}\n";
}

std::string to_dot(BddManager& mgr, const std::vector<Bdd>& functions,
                   const std::vector<std::string>& names,
                   const std::vector<std::string>& var_names) {
  std::ostringstream out;
  write_dot(out, mgr, functions, names, var_names);
  return out.str();
}

std::string dump_function(BddManager& mgr, const Bdd& f) {
  std::ostringstream out;
  LocalIds ids;
  auto name = [&](NodeRef r) -> std::string {
    if (r == kZero) return "0";
    if (r == kOne) return "1";
    return "@" + std::to_string(ids.id(r));
  };
  auto emit = [&](auto&& self, NodeRef r) -> void {
    if (is_terminal(r) || ids.seen(r)) return;
    const std::string me = name(r);  // assigns the id pre-order
    const BddNode& n = mgr.node(r);
    self(self, n.low);
    self(self, n.high);
    out << me << " = x" << var_of(r) << " ? " << name(n.high) << " : "
        << name(n.low) << "\n";
  };
  const NodeRef root = f.ref();
  emit(emit, root);
  out << "root = " << name(root) << "\n";
  return out.str();
}

void write_stats(std::ostream& out, const BddManager& mgr) {
  const ManagerStats s = mgr.stats();
  out << "pbdd statistics\n"
      << "  workers:            " << s.per_worker.size() << "\n"
      << "  live nodes:         " << s.allocated_nodes << "\n"
      << "  bytes:              " << s.bytes << "\n"
      << "  shannon operations: " << s.total.ops_performed << "\n"
      << "  nodes created:      " << s.total.nodes_created << "\n"
      << "  cache lookups:      " << s.total.cache_lookups << "\n"
      << "  cache hits:         " << s.total.cache_hits << " (+"
      << s.total.cache_op_hits << " in-flight)\n"
      << "  cross-ctx misses:   " << s.total.cache_cross_ctx_misses << "\n"
      << "  contexts pushed:    " << s.total.contexts_pushed << "\n"
      << "  groups created:     " << s.total.groups_created << " (taken "
      << s.total.groups_taken << ", stolen " << s.total.groups_stolen
      << ")\n"
      << "  reduction stalls:   " << s.total.reduction_stalls << "\n"
      << "  gc runs:            " << s.gc_runs << "\n";
  const double ns = 1e-9;
  out << "  phase seconds (sum over workers): expansion "
      << static_cast<double>(s.total.expansion_ns) * ns << ", reduction "
      << static_cast<double>(s.total.reduction_ns) * ns << ", lock wait "
      << static_cast<double>(s.total.lock_wait_ns) * ns << ", gc "
      << static_cast<double>(s.total.gc_ns) * ns << "\n";
  for (std::size_t w = 0; w < s.per_worker.size(); ++w) {
    const WorkerStats& ws = s.per_worker[w];
    out << "  worker " << w << ": ops " << ws.ops_performed << ", created "
        << ws.nodes_created << ", top-ops " << ws.top_ops << ", stolen "
        << ws.groups_stolen << "\n";
  }
}

}  // namespace pbdd::core
