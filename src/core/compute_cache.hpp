// Per-worker compute cache (Section 2.3's hybrid "compute cache").
//
// Unlike a depth-first computed cache, this cache holds BOTH computed
// operations (result is a BDD reference) and uncomputed, in-flight
// operations (result is an operator-node reference awaiting its reduction).
// Hitting an uncomputed entry is what prevents the breadth-first expansion
// from spawning redundant operator nodes for shared subproblems.
//
// The cache is direct-mapped and lossy (the paper deliberately does not
// maintain a complete cache of either kind to bound memory overhead), and it
// is private to one worker — the paper's data layout choice that lets the
// expansion phase run without any synchronization, at the cost of some
// duplicated work between workers (quantified in Figs. 11/12).
//
// Layout: an entry is exactly 32 bytes — the tag fields (op, valid,
// generation) are packed into one 64-bit meta word next to f/g/result — and
// the entry array is 64-byte aligned, so two entries share each cache line
// and a probe (tag compare + result read) touches exactly one line.
//
// Validity rules for a hit whose entry holds an operator node:
//   * the entry's generation must match the current operator-arena
//     generation (operator nodes are recycled wholesale between top-level
//     batches);
//   * if the operator node already has a result, the hit returns that BDD;
//   * otherwise the operator node is only usable if it belongs to the
//     requester's *current* evaluation context — an operator node parked in
//     a pushed ancestor context (or handed to a thief) is not guaranteed to
//     be reduced before the current context's reduction phase needs it.
#pragma once

#include <cstdint>
#include <new>
#include <utility>

#include "common/op.hpp"
#include "core/node.hpp"
#include "core/ref.hpp"
#include "util/aligned.hpp"
#include "util/hash.hpp"

namespace pbdd::core {

class ComputeCache {
 public:
  struct Entry {
    NodeRef f = kInvalid;
    NodeRef g = kInvalid;
    Ref result = kInvalid;
    /// bit 63 = valid, bits 32..47 = op, bits 0..31 = generation.
    std::uint64_t meta = 0;

    static constexpr std::uint64_t kValidBit = std::uint64_t{1} << 63;

    [[nodiscard]] static constexpr std::uint64_t pack(
        Op op, std::uint32_t generation) noexcept {
      return kValidBit |
             (static_cast<std::uint64_t>(static_cast<std::uint16_t>(op))
              << 32) |
             generation;
    }
    [[nodiscard]] bool valid() const noexcept {
      return (meta & kValidBit) != 0;
    }
    [[nodiscard]] std::uint16_t op() const noexcept {
      return static_cast<std::uint16_t>(meta >> 32);
    }
    [[nodiscard]] std::uint32_t generation() const noexcept {
      return static_cast<std::uint32_t>(meta);
    }
    /// Tag compare for a probe: valid bit and op in one word, then f/g.
    [[nodiscard]] bool matches(Op op_, NodeRef f_,
                               NodeRef g_) const noexcept {
      return valid() && op() == static_cast<std::uint16_t>(op_) &&
             f == f_ && g == g_;
    }
  };
  static_assert(sizeof(Entry) == 32,
                "two entries per cache line; a probe stays single-line");
  static_assert(util::kCacheLineBytes % sizeof(Entry) == 0);

  ComputeCache() = default;
  ComputeCache(const ComputeCache&) = delete;
  ComputeCache& operator=(const ComputeCache&) = delete;
  ComputeCache(ComputeCache&& other) noexcept { swap(other); }
  ComputeCache& operator=(ComputeCache&& other) noexcept {
    swap(other);
    return *this;
  }
  ~ComputeCache() { release(); }

  void init(unsigned log2_entries) {
    release();
    count_ = std::size_t{1} << log2_entries;
    mask_ = count_ - 1;
    // Line-aligned storage: std::vector's allocator only guarantees
    // alignof(Entry), which would let entries straddle line boundaries.
    entries_ = static_cast<Entry*>(::operator new(
        count_ * sizeof(Entry), std::align_val_t{util::kCacheLineBytes}));
    for (std::size_t i = 0; i < count_; ++i) new (entries_ + i) Entry{};
  }

  [[nodiscard]] std::uint32_t slot_for(Op op, NodeRef f,
                                       NodeRef g) const noexcept {
    return static_cast<std::uint32_t>(
        util::hash_triple(static_cast<std::uint64_t>(op), f, g) & mask_);
  }

  /// Raw probe; interpretation of an operator-node result is the caller's
  /// job (it needs the arena to resolve the node).
  [[nodiscard]] const Entry* lookup(std::uint32_t slot, Op op, NodeRef f,
                                    NodeRef g) const noexcept {
    const Entry& e = entries_[slot];
    return e.matches(op, f, g) ? &e : nullptr;
  }

  void insert(std::uint32_t slot, Op op, NodeRef f, NodeRef g, Ref result,
              std::uint32_t generation) noexcept {
    entries_[slot] = Entry{f, g, result, Entry::pack(op, generation)};
  }

  /// Reduction write-back: replace the uncomputed entry with the computed
  /// BDD result, but only if the slot still holds this very operation.
  void complete(std::uint32_t slot, Op op, NodeRef f, NodeRef g,
                Ref op_ref, NodeRef result) noexcept {
    Entry& e = entries_[slot];
    if (e.matches(op, f, g) && e.result == op_ref) e.result = result;
  }

  /// Drop everything (garbage collection moves nodes, so BDD references in
  /// the cache would dangle).
  void flush() noexcept {
    for (std::size_t i = 0; i < count_; ++i) {
      entries_[i].meta &= ~Entry::kValidBit;
    }
  }

  [[nodiscard]] std::size_t bytes() const noexcept {
    return count_ * sizeof(Entry);
  }

 private:
  void swap(ComputeCache& other) noexcept {
    std::swap(entries_, other.entries_);
    std::swap(count_, other.count_);
    std::swap(mask_, other.mask_);
  }
  void release() noexcept {
    if (entries_ != nullptr) {
      ::operator delete(entries_, std::align_val_t{util::kCacheLineBytes});
      entries_ = nullptr;
    }
    count_ = 0;
    mask_ = 0;
  }

  Entry* entries_ = nullptr;
  std::size_t count_ = 0;
  std::uint64_t mask_ = 0;
};

}  // namespace pbdd::core
