// Per-worker compute cache (Section 2.3's hybrid "compute cache").
//
// Unlike a depth-first computed cache, this cache holds BOTH computed
// operations (result is a BDD reference) and uncomputed, in-flight
// operations (result is an operator-node reference awaiting its reduction).
// Hitting an uncomputed entry is what prevents the breadth-first expansion
// from spawning redundant operator nodes for shared subproblems.
//
// The cache is direct-mapped and lossy (the paper deliberately does not
// maintain a complete cache of either kind to bound memory overhead), and it
// is private to one worker — the paper's data layout choice that lets the
// expansion phase run without any synchronization, at the cost of some
// duplicated work between workers (quantified in Figs. 11/12).
//
// Validity rules for a hit whose entry holds an operator node:
//   * the entry's generation must match the current operator-arena
//     generation (operator nodes are recycled wholesale between top-level
//     batches);
//   * if the operator node already has a result, the hit returns that BDD;
//   * otherwise the operator node is only usable if it belongs to the
//     requester's *current* evaluation context — an operator node parked in
//     a pushed ancestor context (or handed to a thief) is not guaranteed to
//     be reduced before the current context's reduction phase needs it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/op.hpp"
#include "core/node.hpp"
#include "core/ref.hpp"
#include "util/hash.hpp"

namespace pbdd::core {

class ComputeCache {
 public:
  struct Entry {
    NodeRef f = kInvalid;
    NodeRef g = kInvalid;
    Ref result = kInvalid;
    std::uint32_t generation = 0;
    std::uint16_t op = 0xFFFF;
    std::uint16_t valid = 0;
  };

  void init(unsigned log2_entries) {
    entries_.assign(std::size_t{1} << log2_entries, Entry{});
    mask_ = (std::uint64_t{1} << log2_entries) - 1;
  }

  [[nodiscard]] std::uint32_t slot_for(Op op, NodeRef f,
                                       NodeRef g) const noexcept {
    return static_cast<std::uint32_t>(
        util::hash_triple(static_cast<std::uint64_t>(op), f, g) & mask_);
  }

  /// Raw probe; interpretation of an operator-node result is the caller's
  /// job (it needs the arena to resolve the node).
  [[nodiscard]] const Entry* lookup(std::uint32_t slot, Op op, NodeRef f,
                                    NodeRef g) const noexcept {
    const Entry& e = entries_[slot];
    if (e.valid && e.op == static_cast<std::uint16_t>(op) && e.f == f &&
        e.g == g) {
      return &e;
    }
    return nullptr;
  }

  void insert(std::uint32_t slot, Op op, NodeRef f, NodeRef g, Ref result,
              std::uint32_t generation) noexcept {
    entries_[slot] = Entry{f, g, result, generation,
                           static_cast<std::uint16_t>(op), 1};
  }

  /// Reduction write-back: replace the uncomputed entry with the computed
  /// BDD result, but only if the slot still holds this very operation.
  void complete(std::uint32_t slot, Op op, NodeRef f, NodeRef g,
                Ref op_ref, NodeRef result) noexcept {
    Entry& e = entries_[slot];
    if (e.valid && e.op == static_cast<std::uint16_t>(op) && e.f == f &&
        e.g == g && e.result == op_ref) {
      e.result = result;
    }
  }

  /// Drop everything (garbage collection moves nodes, so BDD references in
  /// the cache would dangle).
  void flush() noexcept {
    for (Entry& e : entries_) e.valid = 0;
  }

  [[nodiscard]] std::size_t bytes() const noexcept {
    return entries_.capacity() * sizeof(Entry);
  }

 private:
  std::vector<Entry> entries_;
  std::uint64_t mask_ = 0;
};

}  // namespace pbdd::core
