#include "core/worker.hpp"

#include <cassert>

#include "core/bdd_manager.hpp"
#include "obs/trace_points.hpp"
#include "runtime/backoff.hpp"
#include "runtime/inject.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace pbdd::core {

Worker::Worker(BddManager* mgr, unsigned id, unsigned num_vars,
               const Config& config)
    : mgr_(mgr),
      id_(id),
      config_(config),
      node_arenas_(num_vars),
      op_arenas_(num_vars),
      live_count_(num_vars, 0) {
  cache_.init(config.cache_log2);
  shared_cache_ = mgr->shared_cache();
  shared_levels_ = config.shared_cache_levels == 0 ? num_vars
                                                   : config.shared_cache_levels;
}

Worker::~Worker() = default;

// ---------------------------------------------------------------------------
// Context recycling
// ---------------------------------------------------------------------------

EvalContext* Worker::acquire_context() {
  if (!free_contexts_.empty()) {
    EvalContext* ctx = free_contexts_.back();
    free_contexts_.pop_back();
    ctx->reset(next_ctx_serial_++);
    return ctx;
  }
  context_pool_.push_back(std::make_unique<EvalContext>(
      static_cast<unsigned>(node_arenas_.size()), next_ctx_serial_++));
  return context_pool_.back().get();
}

void Worker::release_context(EvalContext* ctx) {
  free_contexts_.push_back(ctx);
}

void Worker::link(OpQueue& q, unsigned var, std::uint32_t slot) {
  OpNode& n = op_arenas_[var].at(slot);
  n.next = kNilSlot;
  if (q.tail == kNilSlot) {
    q.head = q.tail = slot;
  } else {
    op_arenas_[var].at(q.tail).next = slot;
    q.tail = slot;
  }
}

void Worker::enqueue(OpQueue& q, unsigned var, std::uint32_t slot) {
  link(q, var, slot);
  ++current_->queued;
  if (var < current_->sweep_var) current_->sweep_var = var;
}

// ---------------------------------------------------------------------------
// preprocess_op (Fig. 4, lines 13-20)
// ---------------------------------------------------------------------------

Ref Worker::preprocess(Op op, NodeRef f, NodeRef g) {
  // Line 14: terminal case.
  {
    const Ref t = terminal_case<Ref>(op, f, g, kZero, kOne, kInvalid);
    if (t != kInvalid) return t;
  }
  if (op_commutative(op) && f > g) std::swap(f, g);

  // Line 15: compute-cache probe (computed AND uncomputed operations).
  ++stats_.cache_lookups;
  PBDD_TRACE_CACHE_SAMPLE(stats_.cache_lookups, stats_.cache_hits);
  const std::uint32_t slot = cache_.slot_for(op, f, g);
  if (const ComputeCache::Entry* e = cache_.lookup(slot, op, f, g)) {
    if (is_bdd(e->result)) {
      ++stats_.cache_hits;
      return e->result;
    }
    if (e->generation() == mgr_->op_generation()) {
      OpNode& cached = own_op(e->result);
      const Ref res = cached.result.load(std::memory_order_acquire);
      if (res != kInvalid) {
        // Computed since insertion (same worker, or a thief's publication).
        ++stats_.cache_hits;
        return res;
      }
      if (cached.ctx_serial == current_->serial()) {
        // In flight in the current context: its reduction is guaranteed to
        // run before any parent queued behind it in this context.
        ++stats_.cache_op_hits;
        return e->result;
      }
    }
    // Uncomputed operation owned by a pushed ancestor context (possibly in
    // a thief's hands): its result may not exist by the time the current
    // context reduces, so re-expand. This duplication is the price of the
    // paper's unshared caches and shows up in the Fig. 11 operation counts.
    ++stats_.cache_cross_ctx_misses;
  }

  const unsigned var = std::min(level_of(f), level_of(g));

  // Private miss: another worker may already have finished this very
  // operation (core/shared_cache.hpp); only top-level-rooted operations
  // are shared (Config::shared_cache_levels). A hit is copied into the
  // private cache so repeats stay on the synchronization-free path.
  if (shared_cache_ != nullptr && var < shared_levels_) {
    const NodeRef shared = shared_cache_->lookup(op, f, g);
    if (shared != kInvalid) {
      ++stats_.cache_shared_hits;
      cache_.insert(slot, op, f, g, shared, mgr_->op_generation());
      return shared;
    }
  }

  // Lines 16-19: create the operator node and queue it for expansion.
  assert(var < node_arenas_.size());
  OpArena& arena = op_arenas_[var];
  const std::uint32_t op_slot = arena.alloc();
  OpNode& n = arena.at(op_slot);
  n.f = f;
  n.g = g;
  n.branch0 = kInvalid;
  n.branch1 = kInvalid;
  n.result.store(kInvalid, std::memory_order_relaxed);
  n.cache_slot = slot;
  n.ctx_serial = current_->serial();
  n.op = static_cast<std::uint16_t>(op);
  n.flags = 0;
  const Ref r = make_op_ref(id_, var, op_slot);
  enqueue(current_->op_q(var), var, op_slot);
  cache_.insert(slot, op, f, g, r, mgr_->op_generation());
  return r;
}

// ---------------------------------------------------------------------------
// Expansion phase (Fig. 5)
// ---------------------------------------------------------------------------

void Worker::expansion() {
  util::WallTimer timer;
  PBDD_TRACE_SPAN(trace_span, kExpansion);
  EvalContext& ctx = *current_;
  std::uint64_t round_ops = 0;  // Fig. 5 resets nOpsProcessed per call
  std::uint32_t poll = 0;
  const bool bounded = config_.eval_threshold != Config::kUnbounded;
  const bool paged = mgr_->paged();

  for (unsigned x = ctx.sweep_var; x < ctx.num_vars(); ++x) {
    OpQueue& q = ctx.op_q(x);
    // Fault barrier: every node this iteration dereferences — cofactored
    // operands, unique-table chains — sits at level x (Section 2.2), so one
    // touch makes the whole sweep level safe under paging.
    if (q.head != kNilSlot) mgr_->touch_level(x);
    while (q.head != kNilSlot) {
      const std::uint32_t slot = q.head;
      OpNode& n = op_arenas_[x].at(slot);
      q.head = n.next;
      if (q.head == kNilSlot) q.tail = kNilSlot;
      --ctx.queued;

      // Prefetch the next operation and its operand nodes: cofactoring
      // reads both operands' (low, high), and those lines are the dominant
      // expansion-phase misses on large builds.
      if (q.head != kNilSlot) {
        const OpNode& peek = op_arenas_[x].at(q.head);
        util::prefetch_read(&peek);
        // Under paging, only level-x operands are guaranteed resident (the
        // barrier above); a deeper operand may live in a released arena,
        // where computing its address chases a null directory entry.
        if (is_internal(peek.f) && (!paged || level_of(peek.f) == x)) {
          util::prefetch_read(&mgr_->node(peek.f));
        }
        if (is_internal(peek.g) && (!paged || level_of(peek.g) == x)) {
          util::prefetch_read(&mgr_->node(peek.g));
        }
      }

      const Op op = n.operation();
      const NodeRef f = n.f;
      const NodeRef g = n.g;
      n.branch0 = preprocess(op, mgr_->cofactor(f, x, false),
                             mgr_->cofactor(g, x, false));
      n.branch1 = preprocess(op, mgr_->cofactor(f, x, true),
                             mgr_->cofactor(g, x, true));
      link(ctx.red_q(x), x, slot);
      ++round_ops;
      ++stats_.ops_performed;

      // Lines 9-13: threshold overflow -> spill remaining operations into
      // stealable groups and continue in a child context (or, under the
      // hybrid ablation policy, finish them depth-first). An idle worker's
      // hunger triggers the context switch early (Section 3.3).
      const bool threshold_hit = bounded && round_ops > config_.eval_threshold;
      bool hungry_spill = false;
      if (!threshold_hit && ++poll >= config_.share_poll_interval) {
        poll = 0;
        PBDD_INJECT(kHungryPoll);
        hungry_spill =
            mgr_->hungry_workers.load(std::memory_order_relaxed) > 0 &&
            ctx.queued >= config_.group_size / 4;
        if (!hungry_spill && PBDD_INJECT_QUERY(kForceSpill)) {
          hungry_spill = true;
        }
      }
      if ((threshold_hit || hungry_spill) && ctx.queued > 0) {
        if (threshold_hit &&
            config_.overflow == OverflowPolicy::kDepthFirst) {
          df_drain(x);
          round_ops = 0;  // the depth-first tail bounded this round
          continue;
        }
        ctx.ops_processed += round_ops;
        spill(x);
        stats_.expansion_ns += timer.elapsed_ns();
        PBDD_TRACE_SPAN_ARGS(trace_span, round_ops, 0);
        return;
      }
    }
  }
  ctx.sweep_var = ctx.num_vars();
  ctx.ops_processed += round_ops;
  stats_.expansion_ns += timer.elapsed_ns();
  PBDD_TRACE_SPAN_ARGS(trace_span, round_ops, 0);
}

void Worker::spill(unsigned from_var) {
  PBDD_INJECT(kContextPush);
  EvalContext& ctx = *current_;
  // Steal granularity scales with the spill: a context pushed with far more
  // queued operations than the workers could drain at group_size apiece is
  // partitioned into proportionally coarser groups, so one steal amortizes
  // its lock and cache-migration cost over more work. The divisor keeps a
  // few groups per active worker in flight for load balance; group_size
  // stays the floor so small spills partition exactly as the paper's fixed
  // scheme (and as adaptive_group_size = false always does).
  std::size_t group_cap = config_.group_size;
  if (config_.adaptive_group_size) {
    const std::size_t streams = std::size_t{4} * mgr_->active_workers();
    const std::size_t scaled = ctx.queued / std::max<std::size_t>(streams, 1);
    if (scaled > group_cap) {
      group_cap = std::min<std::size_t>(scaled, Config::kMaxAdaptiveGroup);
    }
  }
  std::deque<Group> groups;
  Group cur;
  for (unsigned v = from_var; v < ctx.num_vars(); ++v) {
    OpQueue& q = ctx.op_q(v);
    for (std::uint32_t slot = q.head; slot != kNilSlot;) {
      OpNode& n = op_arenas_[v].at(slot);
      cur.tasks.push_back(
          GroupTask{&n, slot, static_cast<std::uint16_t>(v)});
      slot = n.next;
      if (cur.tasks.size() >= group_cap) {
        groups.push_back(std::move(cur));
        cur = Group{};
      }
    }
    q.clear();
  }
  if (!cur.tasks.empty()) groups.push_back(std::move(cur));
  ctx.queued = 0;
  ctx.sweep_var = ctx.num_vars();
  stats_.groups_created += groups.size();
  ++stats_.contexts_pushed;
  PBDD_TRACE_INSTANT(kContextPush, groups.size(), from_var);

  EvalContext* child = acquire_context();
  {
    std::lock_guard lock(steal_mutex_);
    groups_avail_.fetch_add(static_cast<std::uint32_t>(groups.size()),
                            std::memory_order_relaxed);
    ctx.groups = std::move(groups);
    stack_.push_back(current_);
  }
  current_ = child;
  // Fresh stealable work exists: wake parked thieves.
  mgr_->bump_work_epoch();
}

// ---------------------------------------------------------------------------
// Hybrid overflow (OverflowPolicy::kDepthFirst): evaluate the remaining
// queued operations by classic depth-first recursion instead of spilling
// them into a child context. This is the predecessor algorithm the paper
// improves on; results land directly in the operator nodes so the pending
// reduction queues resolve exactly as if a thief had computed them.
// ---------------------------------------------------------------------------

NodeRef Worker::df_evaluate(Op op, NodeRef f, NodeRef g) {
  {
    const Ref t = terminal_case<Ref>(op, f, g, kZero, kOne, kInvalid);
    if (t != kInvalid) return t;
  }
  if (op_commutative(op) && f > g) std::swap(f, g);
  ++stats_.cache_lookups;
  PBDD_TRACE_CACHE_SAMPLE(stats_.cache_lookups, stats_.cache_hits);
  const std::uint32_t slot = cache_.slot_for(op, f, g);
  if (const ComputeCache::Entry* e = cache_.lookup(slot, op, f, g)) {
    if (is_bdd(e->result)) {
      ++stats_.cache_hits;
      return e->result;
    }
    if (e->generation() == mgr_->op_generation()) {
      const Ref res =
          own_op(e->result).result.load(std::memory_order_acquire);
      if (res != kInvalid) {
        ++stats_.cache_hits;
        return res;
      }
    }
    // An uncomputed in-flight operation cannot be awaited from depth-first
    // recursion; recompute (bounded duplication, as with unshared caches).
    ++stats_.cache_cross_ctx_misses;
  }
  const unsigned var = std::min(level_of(f), level_of(g));
  mgr_->touch_level(var);
  if (shared_cache_ != nullptr && var < shared_levels_) {
    const NodeRef shared = shared_cache_->lookup(op, f, g);
    if (shared != kInvalid) {
      ++stats_.cache_shared_hits;
      cache_.insert(slot, op, f, g, shared, mgr_->op_generation());
      return shared;
    }
  }
  ++stats_.ops_performed;
  const NodeRef res0 = df_evaluate(op, mgr_->cofactor(f, var, false),
                                   mgr_->cofactor(g, var, false));
  const NodeRef res1 = df_evaluate(op, mgr_->cofactor(f, var, true),
                                   mgr_->cofactor(g, var, true));
  NodeRef result;
  if (res0 == res1) {
    result = res0;
  } else {
    VarUniqueTable& table = mgr_->unique(var);
    const bool pass_lock = mgr_->locking() && table.pass_locked();
    if (pass_lock) table.acquire(id_);
    bool created = false;
    result = table.find_or_insert(id_, res0, res1, created);
    if (created) ++stats_.nodes_created;
    if (pass_lock) table.release();
  }
  cache_.insert(slot, op, f, g, result, mgr_->op_generation());
  if (shared_cache_ != nullptr && var < shared_levels_) {
    shared_cache_->insert(op, f, g, result);
  }
  return result;
}

void Worker::df_drain(unsigned from_var) {
  EvalContext& ctx = *current_;
  for (unsigned v = from_var; v < ctx.num_vars(); ++v) {
    OpQueue& q = ctx.op_q(v);
    while (q.head != kNilSlot) {
      const std::uint32_t slot = q.head;
      OpNode& n = op_arenas_[v].at(slot);
      q.head = n.next;
      if (q.head == kNilSlot) q.tail = kNilSlot;
      --ctx.queued;
      const NodeRef result = df_evaluate(n.operation(), n.f, n.g);
      n.result.store(result, std::memory_order_release);
      if (n.cache_slot != kNoCacheSlot) {
        cache_.complete(n.cache_slot, n.operation(), n.f, n.g,
                        make_op_ref(id_, v, slot), result);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reduction phase (Fig. 6)
// ---------------------------------------------------------------------------

void Worker::reduction() {
  util::WallTimer timer;
  PBDD_TRACE_SPAN(trace_span, kReduction);
  EvalContext& ctx = *current_;
  const bool locking = mgr_->locking();

  for (unsigned x = ctx.num_vars(); x-- > 0;) {
    OpQueue& q = ctx.red_q(x);
    if (q.head == kNilSlot) continue;
    // Fault barrier for the descending sweep: pass 2's chain walks and
    // inserts dereference only level-x nodes.
    mgr_->touch_level(x);
    OpArena& arena = op_arenas_[x];

    // Pass 1 (no lock held): resolve branches to BDD results. This is where
    // an owner stalls on results still being produced by thieves — and
    // turns thief itself (Section 3.3) — so it must not hold the variable
    // lock.
    for (std::uint32_t slot = q.head; slot != kNilSlot;
         slot = arena.at(slot).next) {
      OpNode& n = arena.at(slot);
      if (n.next != kNilSlot) util::prefetch_write(&arena.at(n.next));
      n.branch0 = resolve(n.branch0);
      n.branch1 = resolve(n.branch1);
    }

    // Pass 2: produce all of this variable's BDD nodes under one lock
    // acquisition (the paper's per-variable locking discipline) — with a
    // sharded table, each insert locks only its hash segment (the Section 6
    // "distributed hashing" alternative), and the lock-free table needs no
    // bracketing at all.
    VarUniqueTable& table = mgr_->unique(x);
    const bool pass_lock = locking && table.pass_locked();
    const std::uint64_t hold_t0 = pass_lock ? PBDD_TRACE_NOW() : 0;
    if (pass_lock) table.acquire(id_);
    for (std::uint32_t slot = q.head; slot != kNilSlot;) {
      OpNode& n = arena.at(slot);
      if (n.next != kNilSlot) {
        // The insert below is a hash walk with cold misses; overlap the
        // next operation's line fill with it.
        util::prefetch_write(&arena.at(n.next));
      }
      const NodeRef res0 = n.branch0;
      const NodeRef res1 = n.branch1;
      NodeRef result;
      if (res0 == res1) {
        result = res0;
      } else {
        bool created = false;
        result = table.find_or_insert(id_, res0, res1, created);
        if (created) ++stats_.nodes_created;
      }
      PBDD_INJECT(kReducePublish);
      n.result.store(result, std::memory_order_release);
      if (n.cache_slot != kNoCacheSlot) {
        cache_.complete(n.cache_slot, n.operation(), n.f, n.g,
                        make_op_ref(id_, x, slot), result);
      }
      slot = n.next;
    }
    if (pass_lock) {
      table.release();
      PBDD_TRACE_EMIT_SPAN(kLockHold, hold_t0, x, 0);
    }
    if (shared_cache_ != nullptr && x < shared_levels_) {
      // Publish outside the lock bracket: the walk re-reads warm arena
      // lines, and keeping CASes out of the pass-lock window matters more.
      for (std::uint32_t slot = q.head; slot != kNilSlot;) {
        const OpNode& n = arena.at(slot);
        shared_cache_->insert(
            n.operation(), n.f, n.g,
            n.result.load(std::memory_order_relaxed));
        slot = n.next;
      }
    }
    q.clear();
  }
  stats_.reduction_ns += timer.elapsed_ns();
}

NodeRef Worker::resolve(Ref r) {
  if (is_bdd(r)) return r;
  OpNode& n = own_op(r);
  NodeRef res = n.result.load(std::memory_order_acquire);
  if (res != kInvalid) return res;

  // The operation was handed to a thief inside a stolen group; stall and
  // become a thief ourselves until the result is published. The epoch is
  // captured before every scan and the thief's writeback bumps it, so a
  // publication racing the scan turns the park into an immediate return —
  // no lost wakeups, and no spin/sleep ladder burning the producer's
  // timeslice on an oversubscribed host.
  ++stats_.reduction_stalls;
  PBDD_TRACE_SPAN(stall_span, kResolveStall);
  bool hungry = false;
  while ((res = n.result.load(std::memory_order_acquire)) == kInvalid) {
    PBDD_INJECT(kResolveStall);
    const std::uint64_t seen = mgr_->work_epoch();
    if (try_steal_and_run()) {
      if (hungry) {
        mgr_->hungry_workers.fetch_sub(1, std::memory_order_relaxed);
        hungry = false;
      }
      continue;
    }
    if (!hungry) {
      mgr_->hungry_workers.fetch_add(1, std::memory_order_relaxed);
      hungry = true;
    }
    if ((res = n.result.load(std::memory_order_acquire)) != kInvalid) break;
    mgr_->wait_for_work(seen);
  }
  if (hungry) mgr_->hungry_workers.fetch_sub(1, std::memory_order_relaxed);
  return res;
}

// ---------------------------------------------------------------------------
// pbf_op main loop (Fig. 4, lines 1-12)
// ---------------------------------------------------------------------------

NodeRef Worker::evaluate(Op op, NodeRef f, NodeRef g) {
  assert(is_bdd(f) && is_bdd(g));
  const std::size_t stack_base = stack_.size();
  EvalContext* const saved = current_;
  current_ = acquire_context();

  const Ref root = preprocess(op, f, g);
  if (is_bdd(root)) {
    release_context(current_);
    current_ = saved;
    return root;
  }
  OpNode& root_node = own_op(root);

  for (;;) {
    expansion();
    reduction();
    if (stack_.size() > stack_base) {
      // Lines 5-8: drain the pushed parent's operation groups one at a time.
      if (take_group_from_top()) continue;
      // Lines 9-11: parent exhausted; pop it and reduce it next round.
      EvalContext* top;
      {
        std::lock_guard lock(steal_mutex_);
        top = stack_.back();
        stack_.pop_back();
      }
      release_context(current_);
      current_ = top;
      PBDD_TRACE_INSTANT(kContextPop, stack_.size() - stack_base, 0);
      continue;
    }
    break;
  }

  const NodeRef result = root_node.result.load(std::memory_order_acquire);
  assert(result != kInvalid);
  release_context(current_);
  current_ = saved;
  return result;
}

bool Worker::take_group_from_top() {
  PBDD_INJECT(kGroupTake);
  Group group;
  {
    std::lock_guard lock(steal_mutex_);
    EvalContext* top = stack_.back();
    if (top->groups.empty()) return false;
    group = std::move(top->groups.front());
    top->groups.pop_front();
    groups_avail_.fetch_sub(1, std::memory_order_relaxed);
  }
  ++stats_.groups_taken;
  PBDD_TRACE_INSTANT(kGroupTake, group.tasks.size(), 0);
  EvalContext& ctx = *current_;
  for (const GroupTask& task : group.tasks) {
    task.node->ctx_serial = ctx.serial();
    enqueue(ctx.op_q(task.var), task.var, task.slot);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Work stealing (Section 3.3)
// ---------------------------------------------------------------------------

bool Worker::try_steal_and_run() {
  PBDD_INJECT(kStealAttempt);
  const unsigned n = mgr_->workers();
  for (unsigned i = 0; i < n; ++i) {
    Worker& victim = mgr_->worker((id_ + i) % n);
    // Lock-free emptiness probe: with several workers hungry at once, the
    // old sweep serialized them all on every victim's steal_mutex_ even
    // when there was nothing to take. A stale zero is benign — the spill
    // that publishes fresh groups bumps the work epoch and the scan reruns.
    if (victim.groups_avail_.load(std::memory_order_relaxed) == 0) continue;
    Group group;
    bool got = false;
    {
      std::lock_guard lock(victim.steal_mutex_);
      // Bottom of the stack first: the oldest context holds the
      // coarsest-grained work.
      for (EvalContext* ctx : victim.stack_) {
        if (!ctx->groups.empty()) {
          group = std::move(ctx->groups.front());
          ctx->groups.pop_front();
          victim.groups_avail_.fetch_sub(1, std::memory_order_relaxed);
          got = true;
          break;
        }
      }
    }
    if (!got) continue;

    PBDD_INJECT(kStealSuccess);
    ++stats_.groups_stolen;
    stats_.tasks_stolen += group.tasks.size();
    PBDD_TRACE_SPAN(steal_span, kStealRun);
    PBDD_TRACE_SPAN_ARGS(steal_span, group.tasks.size(), (id_ + i) % n);
    for (const GroupTask& task : group.tasks) {
      OpNode* node = task.node;
      node->flags |= OpNode::kStolen;
      // Compute the stolen operation from scratch in our own context and
      // publish the result back into the victim's operator node.
      const NodeRef res = evaluate(node->operation(), node->f, node->g);
      PBDD_INJECT(kStealWriteback);
      node->result.store(res, std::memory_order_release);
      // The victim may be parked on this very result; wake it.
      mgr_->bump_work_epoch();
      PBDD_TRACE_INSTANT(kStealWriteback, 0, 0);
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Top-level batch participation
// ---------------------------------------------------------------------------

void Worker::run_batch() {
  // Oversubscription guard (Config::max_active_workers): a passive worker
  // neither claims items nor steals — it parks on the pool's condition
  // variable instead of turning the batch into a scheduler convoy. Its
  // arenas stay live and it still walks every GC phase in lockstep.
  if (id_ >= mgr_->active_workers()) return;
  BddManager::BatchState& batch = mgr_->batch();
  const std::size_t total = batch.items.size();
  BatchControl* const control = batch.control;

  // Resolve one operand of a claimed item: a plain handle, or (dep >= 0)
  // the result of an earlier item of the same batch. A pending dependency
  // is always owned by another worker (indices are claimed in fetch_add
  // order, and a claim deterministically ends in done or skipped), so the
  // wait terminates; meanwhile this worker stalls-and-steals like a
  // reduction stall. References are read through the handles at the last
  // moment: a sequential-mode collection between batch items may have
  // moved nodes.
  const auto operand = [&](std::int32_t dep, const Bdd& handle,
                           bool& ok) -> NodeRef {
    if (dep < 0) return handle.ref();
    std::atomic<std::uint8_t>& state = batch.item_state[dep];
    std::uint8_t s = state.load(std::memory_order_acquire);
    if (s == BddManager::BatchState::kItemPending) {
      ++stats_.batch_dep_stalls;
      bool hungry = false;
      for (;;) {
        PBDD_INJECT(kBatchLoop);
        const std::uint64_t seen = mgr_->work_epoch();
        s = state.load(std::memory_order_acquire);
        if (s != BddManager::BatchState::kItemPending) break;
        if (try_steal_and_run()) {
          if (hungry) {
            mgr_->hungry_workers.fetch_sub(1, std::memory_order_relaxed);
            hungry = false;
          }
          continue;
        }
        if (!hungry) {
          mgr_->hungry_workers.fetch_add(1, std::memory_order_relaxed);
          hungry = true;
        }
        s = state.load(std::memory_order_acquire);
        if (s != BddManager::BatchState::kItemPending) break;
        mgr_->wait_for_work(seen);
      }
      if (hungry) {
        mgr_->hungry_workers.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (s == BddManager::BatchState::kItemSkipped) {
      ok = false;
      return kInvalid;
    }
    return batch.result_handles[dep].ref();
  };

  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) break;
    const BddManager::BatchState::Item& item = batch.items[i];
    // Cancellation/deadline checkpoint: an expired batch stops claiming
    // items, and skips cascade through the dependency DAG (an item whose
    // dependency was skipped is skipped too, never evaluated with a
    // missing operand). Skipped items are accounted as completed so the
    // whole batch terminates normally.
    bool ok = control == nullptr || !control->expired();
    NodeRef f = kInvalid;
    NodeRef g = kInvalid;
    if (ok) f = operand(item.f_dep, item.f, ok);
    if (ok) g = operand(item.g_dep, item.g, ok);
    if (!ok) {
      batch.item_state[i].store(BddManager::BatchState::kItemSkipped,
                                std::memory_order_release);
      if (control != nullptr) {
        control->skipped.fetch_add(1, std::memory_order_relaxed);
      }
      batch.completed.fetch_add(1, std::memory_order_acq_rel);
      mgr_->bump_work_epoch();
      continue;
    }
    {
      PBDD_TRACE_SPAN(top_span, kEvalTop);
      PBDD_TRACE_SPAN_ARGS(top_span, i, 0);
      const NodeRef result = evaluate(item.op, f, g);
      mgr_->register_batch_result(i, result);
    }
    batch.completed.fetch_add(1, std::memory_order_acq_rel);
    // Dependents and the batch tail loop may be parked on this completion.
    mgr_->bump_work_epoch();
    ++stats_.top_ops;
    if (config_.sequential_mode) mgr_->maybe_gc();
  }

  // Keep the pipeline busy: steal until every top-level operation in the
  // batch has completed, parking on the work epoch when there is nothing
  // to take.
  bool hungry = false;
  while (batch.completed.load(std::memory_order_acquire) < total) {
    PBDD_INJECT(kBatchLoop);
    const std::uint64_t seen = mgr_->work_epoch();
    if (try_steal_and_run()) {
      if (hungry) {
        mgr_->hungry_workers.fetch_sub(1, std::memory_order_relaxed);
        hungry = false;
      }
      continue;
    }
    if (!hungry) {
      mgr_->hungry_workers.fetch_add(1, std::memory_order_relaxed);
      hungry = true;
    }
    if (batch.completed.load(std::memory_order_acquire) >= total) break;
    mgr_->wait_for_work(seen);
  }
  if (hungry) mgr_->hungry_workers.fetch_sub(1, std::memory_order_relaxed);
}

void Worker::end_of_batch_reset() {
  for (OpArena& arena : op_arenas_) arena.rewind();
}

std::size_t Worker::bytes() const noexcept {
  std::size_t total = cache_.bytes();
  for (const NodeArena& a : node_arenas_) total += a.bytes();
  for (const OpArena& a : op_arenas_) total += a.bytes();
  return total;
}

// ---------------------------------------------------------------------------
// Garbage collection phases (Section 3.4); driven by BddManager::gc_driver
// ---------------------------------------------------------------------------

void Worker::gc_mark_var(unsigned var) {
  PBDD_INJECT(kGcMark);
  NodeArena& arena = node_arenas_[var];
  const std::uint32_t size = arena.size();
  for (std::uint32_t slot = 0; slot < size; ++slot) {
    BddNode& n = arena.at_own(slot);
    if ((n.aux.load(std::memory_order_relaxed) & BddNode::kMarkBit) == 0) {
      continue;
    }
    for (const NodeRef child : {n.low, n.high}) {
      if (!is_terminal(child)) {
        mgr_->node(child).aux.fetch_or(BddNode::kMarkBit,
                                       std::memory_order_relaxed);
      }
    }
  }
}

void Worker::gc_forward() {
  const unsigned num_vars = static_cast<unsigned>(node_arenas_.size());
  for (unsigned v = 0; v < num_vars; ++v) {
    NodeArena& arena = node_arenas_[v];
    const std::uint32_t size = arena.size();
    std::uint32_t next_slot = 0;
    for (std::uint32_t slot = 0; slot < size; ++slot) {
      BddNode& n = arena.at_own(slot);
      if (n.aux.load(std::memory_order_relaxed) & BddNode::kMarkBit) {
        n.aux.store(BddNode::kMarkBit | next_slot,
                    std::memory_order_relaxed);
        ++next_slot;
      }
    }
    live_count_[v] = next_slot;
  }
}

namespace {
NodeRef forwarded(const BddManager& mgr, NodeRef r) {
  if (is_terminal(r)) return r;
  const std::uint64_t aux =
      mgr.node(r).aux.load(std::memory_order_relaxed);
  assert(aux & BddNode::kMarkBit);
  return with_slot(r, static_cast<std::uint32_t>(aux));
}
}  // namespace

void Worker::gc_fix() {
  const unsigned num_vars = static_cast<unsigned>(node_arenas_.size());
  for (unsigned v = 0; v < num_vars; ++v) {
    NodeArena& arena = node_arenas_[v];
    const std::uint32_t size = arena.size();
    for (std::uint32_t slot = 0; slot < size; ++slot) {
      BddNode& n = arena.at_own(slot);
      if ((n.aux.load(std::memory_order_relaxed) & BddNode::kMarkBit) == 0) {
        continue;
      }
      n.low = forwarded(*mgr_, n.low);
      n.high = forwarded(*mgr_, n.high);
    }
  }
}

void Worker::gc_move() {
  const unsigned num_vars = static_cast<unsigned>(node_arenas_.size());
  for (unsigned v = 0; v < num_vars; ++v) {
    NodeArena& arena = node_arenas_[v];
    const std::uint32_t size = arena.size();
    for (std::uint32_t slot = 0; slot < size; ++slot) {
      BddNode& src = arena.at_own(slot);
      const std::uint64_t aux = src.aux.load(std::memory_order_relaxed);
      if ((aux & BddNode::kMarkBit) == 0) continue;
      const std::uint32_t dst_slot = static_cast<std::uint32_t>(aux);
      BddNode& dst = arena.at_own(dst_slot);
      // Sliding compaction: dst_slot <= slot and slots are visited in
      // ascending order, so the destination's previous occupant (if any)
      // has already been copied out.
      dst.low = src.low;
      dst.high = src.high;
      dst.next.store(kZero, std::memory_order_relaxed);
      dst.aux.store(0, std::memory_order_relaxed);
    }
    arena.truncate(live_count_[v]);
  }
  cache_.flush();
}

bool Worker::gc_try_rehash_var(unsigned var) {
  PBDD_INJECT(kGcRehash);
  VarUniqueTable& table = mgr_->unique(var);
  // Only the pass-lock discipline can find the table busy; sharded and
  // lock-free reinserts synchronize per insert, so the claim always works.
  const bool pass_lock = mgr_->locking() && table.pass_locked();
  if (pass_lock && !table.try_acquire()) return false;
  NodeArena& arena = node_arenas_[var];
  const std::uint32_t size = arena.size();
  for (std::uint32_t slot = 0; slot < size; ++slot) {
    BddNode& n = arena.at_own(slot);
    table.reinsert(id_, make_node_ref(id_, var, slot), n.low, n.high);
  }
  if (pass_lock) table.release();
  PBDD_TRACE_INSTANT(kTableRehash, size, var);
  return true;
}

}  // namespace pbdd::core
