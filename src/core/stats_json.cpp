// Shared JSON serialization of the engine statistics. Every machine-readable
// consumer — `bench/harness` dumps, the BENCH_* CI artifacts, and the
// service-layer metrics endpoint — goes through these two functions, so the
// schema cannot drift between printers.
#include <sstream>

#include "core/config.hpp"

namespace pbdd::core {

namespace {

/// Append `"key": value` pairs with standard JSON comma discipline.
class ObjectWriter {
 public:
  explicit ObjectWriter(std::ostringstream& out) : out_(out) { out_ << '{'; }
  void field(const char* key, std::uint64_t value) {
    sep();
    out_ << '"' << key << "\": " << value;
  }
  void raw(const char* key, const std::string& value) {
    sep();
    out_ << '"' << key << "\": " << value;
  }
  void close() { out_ << '}'; }

 private:
  void sep() {
    if (!first_) out_ << ", ";
    first_ = false;
  }
  std::ostringstream& out_;
  bool first_ = true;
};

template <typename T>
std::string array_json(const std::vector<T>& values) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out << ", ";
    out << static_cast<std::uint64_t>(values[i]);
  }
  out << ']';
  return out.str();
}

void worker_stats_fields(ObjectWriter& w, const WorkerStats& s) {
  w.field("ops_performed", s.ops_performed);
  w.field("cache_lookups", s.cache_lookups);
  w.field("cache_hits", s.cache_hits);
  w.field("cache_op_hits", s.cache_op_hits);
  w.field("cache_cross_ctx_misses", s.cache_cross_ctx_misses);
  w.field("cache_shared_hits", s.cache_shared_hits);
  w.field("nodes_created", s.nodes_created);
  w.field("contexts_pushed", s.contexts_pushed);
  w.field("groups_created", s.groups_created);
  w.field("groups_taken", s.groups_taken);
  w.field("groups_stolen", s.groups_stolen);
  w.field("tasks_stolen", s.tasks_stolen);
  w.field("reduction_stalls", s.reduction_stalls);
  w.field("batch_dep_stalls", s.batch_dep_stalls);
  w.field("top_ops", s.top_ops);
  w.field("expansion_ns", s.expansion_ns);
  w.field("reduction_ns", s.reduction_ns);
  w.field("lock_wait_ns", s.lock_wait_ns);
  w.field("cas_retries", s.cas_retries);
  w.field("gc_ns", s.gc_ns);
  w.field("gc_mark_ns", s.gc_mark_ns);
  w.field("gc_fix_ns", s.gc_fix_ns);
  w.field("gc_rehash_ns", s.gc_rehash_ns);
}

}  // namespace

std::string WorkerStats::to_json() const {
  std::ostringstream out;
  ObjectWriter w(out);
  worker_stats_fields(w, *this);
  w.close();
  return out.str();
}

std::string ManagerStats::to_json() const {
  std::ostringstream out;
  ObjectWriter w(out);
  w.raw("total", total.to_json());
  {
    std::ostringstream workers;
    workers << '[';
    for (std::size_t i = 0; i < per_worker.size(); ++i) {
      if (i != 0) workers << ", ";
      workers << per_worker[i].to_json();
    }
    workers << ']';
    w.raw("per_worker", workers.str());
  }
  w.field("gc_runs", gc_runs);
  w.field("live_nodes", live_nodes);
  w.field("allocated_nodes", allocated_nodes);
  w.field("bytes", bytes);
  w.raw("max_nodes_per_var", array_json(max_nodes_per_var));
  w.raw("lock_wait_per_var_ns", array_json(lock_wait_per_var_ns));
  w.close();
  return out.str();
}

}  // namespace pbdd::core
