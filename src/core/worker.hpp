// Per-worker engine state and the partial breadth-first evaluation loop
// (paper Figures 4-6 plus the work distribution of Section 3.3).
//
// Each worker privately owns, per the paper's data layout (Section 3.2):
//   * one BDD-node arena per variable (written during reduction),
//   * one operator-node arena per variable (doubling as the operator and
//     reduction queues),
//   * one compute cache,
//   * a context stack that doubles as this worker's distributed work queue.
// The only shared structures are the per-variable unique tables (locked) and
// the read-only views other workers take of this worker's arenas.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/op.hpp"
#include "core/compute_cache.hpp"
#include "core/config.hpp"
#include "core/shared_cache.hpp"
#include "core/context.hpp"
#include "core/node.hpp"
#include "core/node_arena.hpp"
#include "core/ref.hpp"
#include "util/arena.hpp"

namespace pbdd::core {

class BddManager;

class Worker {
 public:
  using OpArena = util::BlockArena<OpNode, 10>;  // 1024 ops (64 KiB) / block

  Worker(BddManager* mgr, unsigned id, unsigned num_vars,
         const Config& config);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;
  ~Worker();

  [[nodiscard]] unsigned id() const noexcept { return id_; }

  [[nodiscard]] NodeArena& node_arena(unsigned var) noexcept {
    return node_arenas_[var];
  }
  [[nodiscard]] const NodeArena& node_arena(unsigned var) const noexcept {
    return node_arenas_[var];
  }

  [[nodiscard]] WorkerStats& stats() noexcept { return stats_; }
  [[nodiscard]] const WorkerStats& stats() const noexcept { return stats_; }

  /// Top-level batch participation: pull top-level operations from the
  /// manager's batch queue, then keep stealing until the batch completes.
  void run_batch();

  /// Evaluate one operation to completion with the partial breadth-first
  /// algorithm (Fig. 4's pbf_op). Re-entrant: a worker stalled in its own
  /// reduction re-enters this to compute a stolen group.
  NodeRef evaluate(Op op, NodeRef f, NodeRef g);

  /// Rewind operator arenas and recycle contexts between batches.
  void end_of_batch_reset();

  [[nodiscard]] std::size_t bytes() const noexcept;

  // ---- Garbage collection phases (called by the manager's GC driver, all
  // workers in lockstep; see gc.cpp) ---------------------------------------
  void gc_mark_var(unsigned var);
  void gc_forward();
  void gc_fix();
  void gc_move();
  /// Insert this worker's nodes for variable `var` into the (already reset)
  /// unique table. Returns false when the table lock was busy and the caller
  /// should come back later (Section 3.4's "try other variables first").
  bool gc_try_rehash_var(unsigned var);
  [[nodiscard]] std::size_t live_after_move(unsigned var) const noexcept {
    return live_count_[var];
  }

 private:
  friend class BddManager;

  [[nodiscard]] OpNode& own_op(Ref r) noexcept {
    return op_arenas_[var_of(r)].at(slot_of(r));
  }

  // Fig. 4 lines 13-20: terminal check, compute-cache probe, operator-node
  // creation + enqueue. Returns a BDD ref or an operator ref.
  Ref preprocess(Op op, NodeRef f, NodeRef g);

  // Fig. 5: top-down expansion of the current context's operator queues.
  void expansion();

  // Fig. 6: bottom-up reduction of the current context's reduction queues.
  void reduction();

  // Threshold overflow: partition the current context's unexpanded
  // operations into groups, push it, and start a fresh child context.
  void spill(unsigned from_var);

  // Hybrid overflow ablation (OverflowPolicy::kDepthFirst): finish the
  // remaining queued operations by depth-first recursion instead.
  void df_drain(unsigned from_var);
  NodeRef df_evaluate(Op op, NodeRef f, NodeRef g);

  // Take one group back from the context on top of this worker's own stack
  // into the current context. Returns false if the top context is drained.
  bool take_group_from_top();

  // Append to a queue without touching the current context's bookkeeping
  // (used for reduction queues).
  void link(OpQueue& q, unsigned var, std::uint32_t slot);

  // Steal one group from any worker (including this one) and compute its
  // operations, publishing results into the victim's operator nodes.
  bool try_steal_and_run();

  // Resolve an expansion branch to its BDD result, stalling (and turning
  // thief) while a stolen operation is still in flight.
  NodeRef resolve(Ref r);

  void enqueue(OpQueue& q, unsigned var, std::uint32_t slot);

  EvalContext* acquire_context();
  void release_context(EvalContext* ctx);

  BddManager* const mgr_;
  const unsigned id_;
  const Config& config_;

  std::vector<NodeArena> node_arenas_;  // per variable
  std::vector<OpArena> op_arenas_;      // per variable
  ComputeCache cache_;
  /// Manager's shared completed-results cache; nullptr when disabled.
  SharedComputeCache* shared_cache_ = nullptr;
  /// Operations rooted at levels below this go through the shared cache.
  unsigned shared_levels_ = 0;

  // Context stack (Section 3.3: doubles as the distributed work queue).
  // stack_ mutation and group access go through steal_mutex_; the current
  // context is private until pushed.
  std::mutex steal_mutex_;
  std::vector<EvalContext*> stack_;
  EvalContext* current_ = nullptr;

  // Stealable-group count across every pushed context, maintained under
  // steal_mutex_ but readable without it. Thieves probe this before
  // touching the mutex, so an idle sweep over P victims with nothing to
  // offer is P relaxed loads instead of P lock acquisitions — the convoy
  // the old protocol built on steal_mutex_ whenever several workers went
  // hungry at once. Own cache line: it is the one word of this worker
  // every other worker polls.
  alignas(64) std::atomic<std::uint32_t> groups_avail_{0};

  std::vector<std::unique_ptr<EvalContext>> context_pool_;
  std::vector<EvalContext*> free_contexts_;
  std::uint32_t next_ctx_serial_ = 1;

  // GC scratch: live node count per variable after the last mark phase.
  std::vector<std::uint32_t> live_count_;

  WorkerStats stats_;
};

}  // namespace pbdd::core
