// Inspection and export utilities for the core engine: Graphviz DOT output
// of one or more functions (shared subgraphs rendered once), a stable
// textual dump used by tests and debugging, and a human-readable statistics
// report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/bdd_manager.hpp"

namespace pbdd::core {

/// Write `functions` as one Graphviz digraph. Nodes shared between
/// functions appear once — which makes sharing visible, the property BDDs
/// exist for. 0-branches are drawn dashed (the paper's Figure 1 style).
/// `names` (optional) labels the root arrows; `var_names` (optional) labels
/// levels, defaulting to x<i>.
void write_dot(std::ostream& out, BddManager& mgr,
               const std::vector<Bdd>& functions,
               const std::vector<std::string>& names = {},
               const std::vector<std::string>& var_names = {});

[[nodiscard]] std::string to_dot(BddManager& mgr,
                                 const std::vector<Bdd>& functions,
                                 const std::vector<std::string>& names = {},
                                 const std::vector<std::string>& var_names = {});

/// Deterministic textual dump of a function's graph: one line per node,
/// depth-first, with stable local ids. Equal functions produce equal dumps
/// (used by golden tests); structurally different functions differ.
[[nodiscard]] std::string dump_function(BddManager& mgr, const Bdd& f);

/// Multi-line statistics report (node/operation counters, per-phase times,
/// cache behaviour, GC activity, per-worker breakdown).
void write_stats(std::ostream& out, const BddManager& mgr);

}  // namespace pbdd::core
