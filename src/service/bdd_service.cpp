#include "service/bdd_service.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "circuit/ordering.hpp"
#include "core/stats_metrics.hpp"
#include "fault/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_points.hpp"
#include "ooc/demand.hpp"
#include "ooc/level_pager.hpp"
#include "runtime/inject.hpp"
#include "snapshot/snapshot.hpp"

namespace pbdd::service {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] std::chrono::nanoseconds since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start);
}
}  // namespace

const char* request_status_name(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kShed: return "shed";
    case RequestStatus::kExpired: return "expired";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kQuotaExceeded: return "quota_exceeded";
    case RequestStatus::kFailed: return "failed";
  }
  return "?";
}

BddService::BddService(ServiceConfig config)
    : config_(std::move(config)), mgr_(config_.num_vars, config_.engine) {
  vars_.reserve(config_.num_vars);
  nvars_.reserve(config_.num_vars);
  for (unsigned v = 0; v < config_.num_vars; ++v) {
    vars_.push_back(mgr_.var(v));
    nvars_.push_back(mgr_.nvar(v));
  }
  zero_ = mgr_.zero();
  one_ = mgr_.one();
  if (!config_.spill_dir.empty()) {
    ooc::PagerConfig pc;
    pc.spill_dir = config_.spill_dir;
    pc.node_budget = config_.pager_node_budget;
    pager_ = std::make_unique<ooc::LevelPager>(mgr_, pc);
  }
  last_nodes_created_ = mgr_.stats().total.nodes_created;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

BddService::~BddService() {
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  {
    // Cut an in-flight batch short so shutdown is prompt.
    std::lock_guard<std::mutex> lk(inflight_mutex_);
    if (inflight_control_ != nullptr) {
      inflight_control_->cancel.store(true, std::memory_order_release);
    }
  }
  dispatcher_.join();
  // The dispatcher drained the queue on its way out; sessions (and their
  // registered roots) go now, before the manager members destruct.
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    sessions_.clear();
  }
}

// ---- Sessions ---------------------------------------------------------------

SessionId BddService::open_session() {
  std::lock_guard<std::mutex> lk(sessions_mutex_);
  if (open_sessions_ >= config_.max_sessions) return kInvalidSession;
  const SessionId id = next_session_++;
  sessions_.emplace(id, SessionState{});
  ++open_sessions_;
  return id;
}

void BddService::close_session(SessionId session) {
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    sessions_.erase(it);  // drops the session's registered roots
    --open_sessions_;
  }
  roots_released_cv_.notify_all();
  cancel_inflight_if(session);
  // Queued requests of the vanished session resolve kCancelled on pop.
}

void BddService::cancel_session(SessionId session) {
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    ++it->second.epoch;  // lazily expires everything queued before now
  }
  cancel_inflight_if(session);
}

void BddService::release_session_roots(SessionId session) {
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    it->second.roots.clear();
    it->second.accounted_nodes = 0;
  }
  roots_released_cv_.notify_all();  // a deferred governor may now fit
}

std::size_t BddService::session_accounted_nodes(SessionId session) const {
  std::lock_guard<std::mutex> lk(sessions_mutex_);
  const auto it = sessions_.find(session);
  return it != sessions_.end() ? it->second.accounted_nodes : 0;
}

void BddService::cancel_inflight_if(SessionId session) {
  std::lock_guard<std::mutex> lk(inflight_mutex_);
  if (inflight_session_ == session && inflight_control_ != nullptr) {
    inflight_control_->cancel.store(true, std::memory_order_release);
  }
}

// ---- Operand handles --------------------------------------------------------

core::Bdd BddService::var(unsigned v) const {
  assert(v < vars_.size());
  return vars_[v];
}

core::Bdd BddService::nvar(unsigned v) const {
  assert(v < nvars_.size());
  return nvars_[v];
}

// ---- Requests ---------------------------------------------------------------

std::future<RequestResult> BddService::submit(SessionId session,
                                              std::vector<core::BatchOp> ops,
                                              SubmitOptions options) {
  m_submitted_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  req.session = session;
  req.priority = options.priority;
  req.deadline = options.deadline;
  req.register_roots = options.register_roots;
  req.ops = std::move(ops);
  req.enqueued = Clock::now();
  std::future<RequestResult> fut = req.promise.get_future();

  // Fast-fail paths resolve on the caller's thread.
  const auto fail = [&](RequestStatus status, std::string error = {},
                        std::chrono::milliseconds retry = {}) {
    RequestResult r;
    r.status = status;
    r.error = std::move(error);
    r.retry_after = retry;
    req.promise.set_value(std::move(r));
    return std::move(fut);
  };

  for (const core::BatchOp& op : req.ops) {
    if (!op.f.valid() || !op.g.valid() || op.f.manager() != &mgr_ ||
        op.g.manager() != &mgr_) {
      return fail(RequestStatus::kFailed, "operand not owned by this service");
    }
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return fail(RequestStatus::kFailed, "unknown or closed session");
    }
    if (it->second.accounted_nodes >= config_.session_node_quota) {
      m_rejected_quota_.fetch_add(1, std::memory_order_relaxed);
      return fail(RequestStatus::kQuotaExceeded, "session over node quota",
                  retry_hint(1));
    }
    req.session_epoch = it->second.epoch;
  }
  if (req.ops.empty()) {
    m_completed_.fetch_add(1, std::memory_order_relaxed);
    RequestResult r;
    r.status = RequestStatus::kOk;
    req.promise.set_value(std::move(r));
    return fut;
  }

  return enqueue(std::move(req), options, std::move(fut));
}

std::future<RequestResult> BddService::enqueue(Request req,
                                               const SubmitOptions& options,
                                               std::future<RequestResult> fut) {
  // Every admitted request gets a trace id here — the single funnel all
  // submission paths (batch, snapshot, fault campaign) share.
  req.trace_id = obs::Tracer::mint_trace_id();
  const auto fail = [&](RequestStatus status, std::string error,
                        std::chrono::milliseconds retry = {}) {
    RequestResult r;
    r.status = status;
    r.error = std::move(error);
    r.retry_after = retry;
    req.promise.set_value(std::move(r));
    return std::move(fut);
  };
  std::unique_lock<std::mutex> lk(queue_mutex_);
  if (queued_total_ >= config_.queue_capacity && !stopping_) {
    if (!options.block_on_full) {
      m_rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t depth = queued_total_;
      lk.unlock();
      return fail(RequestStatus::kRejected, "admission queue full",
                  retry_hint(1 + depth / std::max<std::size_t>(
                                         1, config_.queue_capacity / 4)));
    }
    // Backpressure: block until the dispatcher makes room (bounded by the
    // request's own deadline, if any).
    const auto room = [&] {
      return stopping_ || queued_total_ < config_.queue_capacity;
    };
    if (req.deadline) {
      if (!space_cv_.wait_until(lk, *req.deadline, room)) {
        m_expired_.fetch_add(1, std::memory_order_relaxed);
        lk.unlock();
        return fail(RequestStatus::kExpired, "deadline passed in backpressure");
      }
    } else {
      space_cv_.wait(lk, room);
    }
  }
  if (stopping_) {
    m_cancelled_.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    return fail(RequestStatus::kCancelled, "service shutting down");
  }
  queues_[static_cast<unsigned>(req.priority)].push_back(std::move(req));
  ++queued_total_;
  lk.unlock();
  work_cv_.notify_one();
  return fut;
}

// ---- Checkpoint / restore ---------------------------------------------------

std::future<RequestResult> BddService::submit_snapshot(
    Request::Kind kind, SessionId session, std::string path,
    const SubmitOptions& options) {
  m_submitted_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  req.kind = kind;
  req.snapshot_path = std::move(path);
  req.session = session;
  req.priority = options.priority;
  req.deadline = options.deadline;
  req.enqueued = Clock::now();
  std::future<RequestResult> fut = req.promise.get_future();
  const auto fail = [&](std::string error) {
    RequestResult r;
    r.status = RequestStatus::kFailed;
    r.error = std::move(error);
    req.promise.set_value(std::move(r));
    return std::move(fut);
  };
  if (req.snapshot_path.empty()) return fail("empty snapshot path");
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return fail("unknown or closed session");
    req.session_epoch = it->second.epoch;
  }
  return enqueue(std::move(req), options, std::move(fut));
}

std::future<RequestResult> BddService::save_session(SessionId session,
                                                    std::string path,
                                                    SubmitOptions options) {
  return submit_snapshot(Request::Kind::kSaveSnapshot, session,
                         std::move(path), options);
}

std::future<RequestResult> BddService::restore_session(SessionId session,
                                                       std::string path,
                                                       SubmitOptions options) {
  return submit_snapshot(Request::Kind::kRestoreSnapshot, session,
                         std::move(path), options);
}

std::future<RequestResult> BddService::save_all(std::string path,
                                                SubmitOptions options) {
  m_submitted_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  req.kind = Request::Kind::kSaveSnapshot;
  req.snapshot_path = std::move(path);
  req.session = kInvalidSession;  // the internal-checkpoint save path
  req.priority = options.priority;
  req.deadline = options.deadline;
  req.enqueued = Clock::now();
  std::future<RequestResult> fut = req.promise.get_future();
  if (req.snapshot_path.empty()) {
    RequestResult r;
    r.status = RequestStatus::kFailed;
    r.error = "empty snapshot path";
    req.promise.set_value(std::move(r));
    return fut;
  }
  return enqueue(std::move(req), options, std::move(fut));
}

BddService::ReadAnswer BddService::read_root(
    const std::string& name, ReadKind kind,
    const std::vector<bool>& assignment) {
  ReadAnswer ans;
  // Parse the checkpoint convention "s<sid>/r<i>".
  SessionId sid = 0;
  std::size_t idx = 0;
  {
    std::size_t pos = 0;
    const auto digits = [&](auto& out) {
      if (pos >= name.size() || name[pos] < '0' || name[pos] > '9') {
        return false;
      }
      std::uint64_t v = 0;
      while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(name[pos] - '0');
        ++pos;
      }
      out = v;
      return true;
    };
    bool good = pos < name.size() && name[pos] == 's';
    ++pos;
    good = good && digits(sid);
    good = good && pos + 1 < name.size() && name[pos] == '/' &&
           name[pos + 1] == 'r';
    pos += 2;
    good = good && digits(idx) && pos == name.size();
    if (!good) {
      ans.error = "malformed root name (expected s<sid>/r<i>): " + name;
      return ans;
    }
  }
  core::Bdd root;
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) {
      ans.error = "unknown session in root name " + name;
      return ans;
    }
    if (idx >= it->second.roots.size()) {
      ans.error = "root index out of range in " + name;
      return ans;
    }
    root = it->second.roots[idx];
  }
  try {
    std::lock_guard<std::mutex> mlk(manager_mutex_);
    switch (kind) {
      case ReadKind::kEval:
        if (assignment.size() != mgr_.num_vars()) {
          ans.error = "assignment size mismatch";
          return ans;
        }
        ans.value = mgr_.eval(root, assignment) ? 1 : 0;
        break;
      case ReadKind::kSatCount:
        ans.sat = mgr_.sat_count(root);
        break;
      case ReadKind::kRootInfo:
        ans.value = mgr_.node_count(root);
        break;
    }
    ans.ok = true;
  } catch (const std::exception& e) {
    ans.error = e.what();
  }
  return ans;
}

RequestResult BddService::execute(SessionId session,
                                  std::vector<core::BatchOp> ops,
                                  SubmitOptions options) {
  return submit(session, std::move(ops), options).get();
}

// ---- Fault campaigns --------------------------------------------------------

std::future<RequestResult> BddService::submit_fault_campaign(
    SessionId session, std::shared_ptr<const circuit::Circuit> circuit,
    FaultCampaignOptions campaign, SubmitOptions options) {
  m_submitted_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  req.kind = Request::Kind::kFaultCampaign;
  req.fault_circuit = std::move(circuit);
  req.fault_options = campaign;
  req.session = session;
  req.priority = options.priority;
  req.deadline = options.deadline;
  req.enqueued = Clock::now();
  std::future<RequestResult> fut = req.promise.get_future();
  const auto fail = [&](std::string error) {
    RequestResult r;
    r.status = RequestStatus::kFailed;
    r.error = std::move(error);
    req.promise.set_value(std::move(r));
    return std::move(fut);
  };
  if (req.fault_circuit == nullptr) return fail("null circuit");
  if (req.fault_circuit->inputs().size() > config_.num_vars) {
    return fail("circuit has more inputs than service variables");
  }
  for (std::uint32_t id = 0; id < req.fault_circuit->num_gates(); ++id) {
    if (req.fault_circuit->gate(id).fanins.size() > 2) {
      return fail("circuit not binarized");
    }
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return fail("unknown or closed session");
    req.session_epoch = it->second.epoch;
  }
  return enqueue(std::move(req), options, std::move(fut));
}

RequestResult BddService::run_fault_campaign(
    SessionId session, std::shared_ptr<const circuit::Circuit> circuit,
    FaultCampaignOptions campaign, SubmitOptions options) {
  return submit_fault_campaign(session, std::move(circuit), campaign, options)
      .get();
}

// ---- Dispatcher -------------------------------------------------------------

void BddService::dispatcher_loop() {
  PBDD_TRACE_TRACK_BEGIN(obs::kTrackService);
  for (;;) {
    Request req;
    bool drain = false;
    {
      std::unique_lock<std::mutex> lk(queue_mutex_);
      work_cv_.wait(lk, [&] { return stopping_ || queued_total_ > 0; });
      if (queued_total_ == 0) break;  // stopping_ and nothing left
      for (int p = static_cast<int>(kNumPriorities) - 1; p >= 0; --p) {
        if (!queues_[p].empty()) {
          req = std::move(queues_[p].front());
          queues_[p].pop_front();
          break;
        }
      }
      --queued_total_;
      drain = stopping_;
    }
    space_cv_.notify_one();
    if (drain) {
      resolve(req, RequestStatus::kCancelled);
      continue;
    }
    process_request(std::move(req));
  }
}

namespace {

/// Binds a request's trace id for the duration of its execution: the
/// dispatcher thread gets it thread-locally, and the process-wide active id
/// lets engine worker threads (which the dispatcher fans out to) inherit it.
/// Requests execute one at a time, so the active id never races another
/// request.
class RequestTraceScope {
 public:
  explicit RequestTraceScope(std::uint64_t id) noexcept {
    obs::Tracer::set_thread_trace_id(id);
    obs::Tracer::set_active_trace_id(id);
  }
  ~RequestTraceScope() {
    obs::Tracer::set_thread_trace_id(0);
    obs::Tracer::set_active_trace_id(0);
  }
  RequestTraceScope(const RequestTraceScope&) = delete;
  RequestTraceScope& operator=(const RequestTraceScope&) = delete;
};

}  // namespace

void BddService::process_request(Request req) {
  const RequestTraceScope trace_scope(req.trace_id);
  const std::chrono::nanoseconds queue_ns = since(req.enqueued);

  // The session may have been closed or cancelled while this sat queued.
  // (The internal periodic checkpoint carries kInvalidSession: it snapshots
  // every session and has no owner to outlive.)
  if (req.session != kInvalidSession) {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    const auto it = sessions_.find(req.session);
    if (it == sessions_.end() || req.session_epoch < it->second.epoch) {
      resolve(req, RequestStatus::kCancelled, queue_ns);
      return;
    }
  }
  if (req.deadline && Clock::now() >= *req.deadline) {
    resolve(req, RequestStatus::kExpired, queue_ns);
    return;
  }
  if (req.kind == Request::Kind::kSaveSnapshot) {
    process_save(req, queue_ns);
    return;
  }
  if (req.kind == Request::Kind::kRestoreSnapshot) {
    process_restore(req, queue_ns);
    return;
  }
  if (req.kind == Request::Kind::kFaultCampaign) {
    process_fault(req, queue_ns);
    return;
  }
  if (!governor_admit(req.ops.size(), req.priority,
                      std::span<const core::BatchOp>(req.ops.data(),
                                                     req.ops.size()))) {
    resolve(req, RequestStatus::kRejected, queue_ns);
    return;
  }

  m_admitted_.fetch_add(1, std::memory_order_relaxed);
  PBDD_INJECT(kServiceAdmit);
  PBDD_TRACE_INSTANT(kServiceAdmit, req.ops.size(), req.session);

  core::BatchControl ctl;
  if (req.deadline) ctl.arm_deadline(*req.deadline);
  {
    std::lock_guard<std::mutex> lk(inflight_mutex_);
    inflight_session_ = req.session;
    inflight_control_ = &ctl;
  }

  std::vector<core::Bdd> results;
  std::chrono::nanoseconds exec_ns{0};
  std::size_t registered_nodes = 0;
  std::uint32_t skipped = 0;
  {
    std::lock_guard<std::mutex> mlk(manager_mutex_);
    const Clock::time_point t0 = Clock::now();
    results = mgr_.apply_batch(
        std::span<const core::BatchOp>(req.ops.data(), req.ops.size()), &ctl);
    exec_ns = since(t0);
    skipped = ctl.skipped.load(std::memory_order_relaxed);

    // Calibrate the demand model on what this batch actually created.
    const std::uint64_t created = mgr_.stats().total.nodes_created;
    const std::size_t executed = req.ops.size() - skipped;
    if (executed > 0) {
      demand_samples_.push_back(
          static_cast<double>(created - last_nodes_created_) /
          static_cast<double>(executed));
      while (demand_samples_.size() > config_.governor_history) {
        demand_samples_.pop_front();
      }
      m_demand_per_op_milli_.store(
          static_cast<std::uint64_t>(demand_per_op_locked() * 1000.0),
          std::memory_order_relaxed);
    }
    last_nodes_created_ = created;

    // Post-batch budget enforcement: a mispredicted batch can overshoot;
    // collect immediately rather than letting the overshoot compound.
    std::size_t allocated = mgr_.live_nodes();
    std::size_t prev = m_max_allocated_observed_.load(std::memory_order_relaxed);
    while (allocated > prev && !m_max_allocated_observed_.compare_exchange_weak(
                                   prev, allocated, std::memory_order_relaxed)) {
    }
    if (allocated > config_.live_node_budget) {
      PBDD_TRACE_INSTANT(kGovernorGc, allocated, 0);
      mgr_.gc();
      m_governor_gcs_.fetch_add(1, std::memory_order_relaxed);
      allocated = mgr_.live_nodes();
    }
    prev = m_max_live_observed_.load(std::memory_order_relaxed);
    while (allocated > prev && !m_max_live_observed_.compare_exchange_weak(
                                   prev, allocated, std::memory_order_relaxed)) {
    }

    if (skipped == 0 && req.register_roots) {
      for (const core::Bdd& b : results) registered_nodes += mgr_.node_count(b);
    }
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mutex_);
    inflight_session_ = kInvalidSession;
    inflight_control_ = nullptr;
  }

  m_batches_executed_.fetch_add(1, std::memory_order_relaxed);
  m_ops_executed_.fetch_add(req.ops.size() - skipped,
                            std::memory_order_relaxed);
  maybe_enqueue_checkpoint();

  if (skipped > 0) {
    // Cut short: partial results go out of scope here and become garbage
    // for the next collection. Deadline and cancellation are told apart by
    // which trigger actually fired.
    results.clear();
    const bool cancelled = ctl.cancel.load(std::memory_order_acquire);
    resolve(req, cancelled ? RequestStatus::kCancelled : RequestStatus::kExpired,
            queue_ns, exec_ns);
    return;
  }

  if (req.register_roots) {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    auto it = sessions_.find(req.session);
    if (it == sessions_.end() || req.session_epoch < it->second.epoch) {
      // Session vanished or was cancelled during execution; drop the work.
      resolve(req, RequestStatus::kCancelled, queue_ns, exec_ns);
      return;
    }
    it->second.roots.insert(it->second.roots.end(), results.begin(),
                            results.end());
    it->second.accounted_nodes += registered_nodes;
  }

  m_completed_.fetch_add(1, std::memory_order_relaxed);
  RequestResult r;
  r.status = RequestStatus::kOk;
  r.roots = std::move(results);
  r.queue_ns = queue_ns;
  r.exec_ns = exec_ns;
  req.promise.set_value(std::move(r));
}

void BddService::process_save(Request& req, std::chrono::nanoseconds queue_ns) {
  PBDD_INJECT(kSnapshotWrite);
  const bool internal = req.session == kInvalidSession;
  // Collect the named roots first (handle copies are cheap and keep the
  // nodes live), then drop sessions_mutex_ before pausing the engine.
  std::vector<snapshot::NamedRoot> named;
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    std::vector<SessionId> sids;
    if (internal) {
      sids.reserve(sessions_.size());
      for (const auto& [sid, state] : sessions_) sids.push_back(sid);
      std::sort(sids.begin(), sids.end());  // stable root-table order
    } else {
      sids.push_back(req.session);
    }
    for (const SessionId sid : sids) {
      const auto it = sessions_.find(sid);
      if (it == sessions_.end()) continue;
      const std::vector<core::Bdd>& roots = it->second.roots;
      for (std::size_t i = 0; i < roots.size(); ++i) {
        std::string name = internal ? "s" + std::to_string(sid) + "/r" +
                                          std::to_string(i)
                                    : "r" + std::to_string(i);
        named.push_back({std::move(name), roots[i]});
      }
    }
  }

  RequestResult r;
  r.queue_ns = queue_ns;
  try {
    snapshot::SaveOptions opts;
    opts.mode = snapshot::SaveMode::kExportRoots;
    const std::uint64_t trace_t0 = PBDD_TRACE_NOW();
    const Clock::time_point t0 = Clock::now();
    snapshot::SaveStats s;
    {
      std::lock_guard<std::mutex> mlk(manager_mutex_);
      s = snapshot::save(mgr_, req.snapshot_path, named, opts);
    }
    const std::uint64_t pause = static_cast<std::uint64_t>(since(t0).count());
    PBDD_TRACE_EMIT_SPAN(kCheckpointSave, trace_t0, s.bytes, 0);
    record_pause(pause);
    m_snapshots_saved_.fetch_add(1, std::memory_order_relaxed);
    m_snapshot_bytes_.fetch_add(s.bytes, std::memory_order_relaxed);
    m_completed_.fetch_add(1, std::memory_order_relaxed);
    r.status = RequestStatus::kOk;
    r.exec_ns = std::chrono::nanoseconds(pause);
  } catch (const std::exception& e) {
    m_snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    r.status = RequestStatus::kFailed;
    r.error = e.what();
  }
  if (internal) {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    checkpoint_pending_ = false;
  }
  req.promise.set_value(std::move(r));
}

void BddService::process_restore(Request& req,
                                 std::chrono::nanoseconds queue_ns) {
  PBDD_INJECT(kSnapshotRestore);
  RequestResult r;
  r.queue_ns = queue_ns;
  std::vector<snapshot::NamedRoot> named;
  snapshot::RestoreStats rs;
  std::size_t registered_nodes = 0;
  try {
    const std::uint64_t trace_t0 = PBDD_TRACE_NOW();
    const Clock::time_point t0 = Clock::now();
    std::lock_guard<std::mutex> mlk(manager_mutex_);
    named = snapshot::import_into(mgr_, req.snapshot_path, &rs);
    // The import may have overshot the budget; enforce it like a batch.
    if (mgr_.live_nodes() > config_.live_node_budget) {
      PBDD_TRACE_INSTANT(kGovernorGc, mgr_.live_nodes(), 0);
      mgr_.gc();
      m_governor_gcs_.fetch_add(1, std::memory_order_relaxed);
    }
    for (const snapshot::NamedRoot& nr : named) {
      registered_nodes += mgr_.node_count(nr.bdd);
    }
    r.exec_ns = since(t0);
    PBDD_TRACE_EMIT_SPAN(kCheckpointRestore, trace_t0, rs.nodes, 0);
  } catch (const std::exception& e) {
    m_snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    r.status = RequestStatus::kFailed;
    r.error = e.what();
    req.promise.set_value(std::move(r));
    return;
  }
  m_snapshots_restored_.fetch_add(1, std::memory_order_relaxed);
  m_snapshot_nodes_restored_.fetch_add(rs.nodes, std::memory_order_relaxed);

  std::vector<core::Bdd> roots;
  roots.reserve(named.size());
  for (snapshot::NamedRoot& nr : named) roots.push_back(std::move(nr.bdd));
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    const auto it = sessions_.find(req.session);
    if (it == sessions_.end() || req.session_epoch < it->second.epoch) {
      resolve(req, RequestStatus::kCancelled, queue_ns, r.exec_ns);
      return;  // restored handles drop; the next collection reclaims them
    }
    if (it->second.accounted_nodes + registered_nodes >
        config_.session_node_quota) {
      m_rejected_quota_.fetch_add(1, std::memory_order_relaxed);
      r.status = RequestStatus::kQuotaExceeded;
      r.error = "restored roots exceed session node quota";
      r.retry_after = retry_hint(1);
      req.promise.set_value(std::move(r));
      return;
    }
    it->second.roots.insert(it->second.roots.end(), roots.begin(),
                            roots.end());
    it->second.accounted_nodes += registered_nodes;
  }
  m_completed_.fetch_add(1, std::memory_order_relaxed);
  r.status = RequestStatus::kOk;
  r.roots = std::move(roots);
  req.promise.set_value(std::move(r));
}

void BddService::process_fault(Request& req,
                               std::chrono::nanoseconds queue_ns) {
  const circuit::Circuit& circuit = *req.fault_circuit;
  // Governor admission with a topology-derived demand estimate: the golden
  // build issues roughly one op per gate and every fault wave revisits its
  // cone gates, so a small multiple of the gate count is the right scale.
  const std::size_t ops_estimate = circuit.num_gates() * 4;
  if (!governor_admit(ops_estimate, req.priority)) {
    resolve(req, RequestStatus::kRejected, queue_ns);
    return;
  }
  m_admitted_.fetch_add(1, std::memory_order_relaxed);
  PBDD_TRACE_INSTANT(kServiceAdmit, ops_estimate, req.session);

  core::BatchControl ctl;
  if (req.deadline) ctl.arm_deadline(*req.deadline);
  {
    std::lock_guard<std::mutex> lk(inflight_mutex_);
    inflight_session_ = req.session;
    inflight_control_ = &ctl;
  }

  auto outcome = std::make_shared<FaultCampaignOutcome>();
  std::chrono::nanoseconds exec_ns{0};
  std::string error;
  {
    std::lock_guard<std::mutex> mlk(manager_mutex_);
    const Clock::time_point t0 = Clock::now();
    try {
      // The campaign (and its golden BDD handles) lives and dies inside the
      // manager lock — handle churn is a manager call like any other.
      const std::vector<unsigned> order = circuit::order_dfs(circuit);
      fault::FaultCampaign campaign(mgr_, circuit, order);
      fault::FaultSimOptions fopts;
      fopts.batch_faults = req.fault_options.batch_faults;
      fopts.max_nets = req.fault_options.max_nets;
      fopts.control = &ctl;
      outcome->results = campaign.run(fopts);
      outcome->stats = campaign.stats();
    } catch (const std::exception& e) {
      error = e.what();
    }
    exec_ns = since(t0);
    // The campaign's node churn is not a per-op demand sample; rebase the
    // calibration so the next batch's delta is its own.
    last_nodes_created_ = mgr_.stats().total.nodes_created;
    // Post-campaign budget enforcement, same as after a batch.
    std::size_t allocated = mgr_.live_nodes();
    std::size_t prev =
        m_max_allocated_observed_.load(std::memory_order_relaxed);
    while (allocated > prev &&
           !m_max_allocated_observed_.compare_exchange_weak(
               prev, allocated, std::memory_order_relaxed)) {
    }
    if (allocated > config_.live_node_budget) {
      PBDD_TRACE_INSTANT(kGovernorGc, allocated, 0);
      mgr_.gc();
      m_governor_gcs_.fetch_add(1, std::memory_order_relaxed);
      allocated = mgr_.live_nodes();
    }
    prev = m_max_live_observed_.load(std::memory_order_relaxed);
    while (allocated > prev && !m_max_live_observed_.compare_exchange_weak(
                                   prev, allocated, std::memory_order_relaxed)) {
    }
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mutex_);
    inflight_session_ = kInvalidSession;
    inflight_control_ = nullptr;
  }

  const fault::CampaignStats& cs = outcome->stats;
  m_batches_executed_.fetch_add(cs.batches + cs.golden_batches,
                                std::memory_order_relaxed);
  m_ops_executed_.fetch_add(cs.cone_ops + cs.miter_ops,
                            std::memory_order_relaxed);
  m_fault_batches_.fetch_add(cs.batches + cs.golden_batches,
                             std::memory_order_relaxed);
  m_fault_evaluated_.fetch_add(cs.faults_evaluated, std::memory_order_relaxed);
  m_fault_detected_.fetch_add(cs.faults_detected, std::memory_order_relaxed);
  m_fault_equivalent_.fetch_add(cs.faults_equivalent,
                                std::memory_order_relaxed);
  maybe_enqueue_checkpoint();

  if (!error.empty()) {
    RequestResult r;
    r.status = RequestStatus::kFailed;
    r.error = std::move(error);
    r.queue_ns = queue_ns;
    r.exec_ns = exec_ns;
    req.promise.set_value(std::move(r));
    return;
  }
  if (cs.cancelled) {
    m_fault_cancelled_.fetch_add(1, std::memory_order_relaxed);
    const bool cancelled = ctl.cancel.load(std::memory_order_acquire);
    resolve(req,
            cancelled ? RequestStatus::kCancelled : RequestStatus::kExpired,
            queue_ns, exec_ns);
    return;
  }

  fault::ReportInfo info;
  info.circuit = circuit.name();
  info.inputs = circuit.inputs().size();
  info.outputs = circuit.outputs().size();
  info.gates = circuit.num_gates();
  info.total_nets = fault::enumerate_fault_sites(circuit).size();
  info.reported_nets = outcome->results.size();
  outcome->report = fault::render_report(info, outcome->results);

  m_fault_completed_.fetch_add(1, std::memory_order_relaxed);
  m_completed_.fetch_add(1, std::memory_order_relaxed);
  RequestResult r;
  r.status = RequestStatus::kOk;
  r.fault = std::move(outcome);
  r.queue_ns = queue_ns;
  r.exec_ns = exec_ns;
  req.promise.set_value(std::move(r));
}

void BddService::maybe_enqueue_checkpoint() {
  if (config_.checkpoint_every_batches == 0) return;
  if (m_batches_executed_.load(std::memory_order_relaxed) %
          config_.checkpoint_every_batches !=
      0) {
    return;
  }
  Request req;
  req.kind = Request::Kind::kSaveSnapshot;
  req.snapshot_path = config_.checkpoint_path;
  req.session = kInvalidSession;
  req.priority = Priority::kHigh;
  req.enqueued = Clock::now();
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    if (stopping_ || checkpoint_pending_) return;
    checkpoint_pending_ = true;
    // Bypasses the capacity bound: at most one internal request exists, and
    // the dispatcher blocking on its own queue would deadlock.
    queues_[static_cast<unsigned>(Priority::kHigh)].push_back(std::move(req));
    ++queued_total_;
  }
  work_cv_.notify_one();
}

void BddService::record_pause(std::uint64_t ns) {
  m_pause_last_ns_.store(ns, std::memory_order_relaxed);
  std::uint64_t prev = m_pause_max_ns_.load(std::memory_order_relaxed);
  while (ns > prev && !m_pause_max_ns_.compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
  constexpr std::size_t kWindow = 512;
  std::lock_guard<std::mutex> lk(snapshot_mutex_);
  if (pause_samples_ns_.size() < kWindow) {
    pause_samples_ns_.push_back(ns);
  } else {
    pause_samples_ns_[pause_next_] = ns;
    pause_next_ = (pause_next_ + 1) % kWindow;
  }
}

// ---- Governor ---------------------------------------------------------------

double BddService::demand_per_op_locked() const {
  if (demand_samples_.empty()) return config_.bootstrap_demand_per_op;
  // 0.9-quantile of the window: robust to one outlier batch, still
  // pessimistic enough that the budget holds when demand is bursty.
  std::vector<double> sorted(demand_samples_.begin(), demand_samples_.end());
  const std::size_t idx = (sorted.size() * 9) / 10;
  const auto nth = sorted.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(idx, sorted.size() - 1));
  std::nth_element(sorted.begin(), nth, sorted.end());
  return *nth;
}

bool BddService::governor_admit(std::size_t ops, Priority priority,
                                std::span<const core::BatchOp> batch) {
  unsigned deferrals = 0;
  bool shed_done = false;
  std::optional<double> estimated;  // max-cut demand, priced once
  for (;;) {
    {
      std::lock_guard<std::mutex> mlk(manager_mutex_);
      if (config_.use_demand_estimator && !batch.empty() && !estimated) {
        const ooc::DemandEstimate est =
            ooc::estimate_batch_demand(mgr_, batch);
        if (est.exact) {
          estimated = static_cast<double>(est.nodes);
          m_demand_estimates_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      double demand;
      if (estimated) {
        // The operands were actually profiled: trust the max-cut bound.
        demand = *estimated;
      } else {
        demand = demand_per_op_locked() * static_cast<double>(ops);
        if (demand_samples_.empty()) {
          // With zero calibration evidence the bootstrap guess must not be
          // able to starve the service on its own (a pessimistic default
          // would otherwise reject everything and never gather a sample).
          // Cap the blind projection at half the budget; the post-batch
          // enforcement collects immediately if the guess was wrong.
          demand = std::min(
              demand, static_cast<double>(config_.live_node_budget) / 2.0);
        }
      }
      const auto projected = [&](std::size_t allocated) {
        return allocated + static_cast<std::size_t>(demand);
      };
      if (projected(mgr_.live_nodes()) <= config_.live_node_budget) {
        return true;
      }
      // First lever: collect. Roots released since the last collection (by
      // clients or by abandoned partial batches) come back here.
      PBDD_TRACE_INSTANT(kGovernorGc, mgr_.live_nodes(), 0);
      mgr_.gc();
      m_governor_gcs_.fetch_add(1, std::memory_order_relaxed);
      if (projected(mgr_.live_nodes()) <= config_.live_node_budget) {
        return true;
      }
      // Second lever: page. Cold levels move to disk instead of anyone's
      // work being deferred or shed — live_nodes() drops with each level
      // released, and the batch faults back only what it actually touches.
      if (pager_ != nullptr) {
        const auto need = static_cast<std::size_t>(demand);
        const std::size_t target = config_.live_node_budget > need
                                       ? config_.live_node_budget - need
                                       : 0;
        if (pager_->demote_until(target) > 0 &&
            projected(mgr_.live_nodes()) <= config_.live_node_budget) {
          return true;
        }
      }
    }
    // Still over budget with everything dead collected: the store is full
    // of live, referenced nodes. Defer and wait for sessions to release.
    ++deferrals;
    m_deferrals_.fetch_add(1, std::memory_order_relaxed);
    PBDD_INJECT(kServiceCancel);
    PBDD_TRACE_INSTANT(kServiceDefer, deferrals, 0);
    if (deferrals > 2 * config_.shed_after_deferrals) {
      m_rejected_demand_.fetch_add(1, std::memory_order_relaxed);
      PBDD_TRACE_INSTANT(kServiceReject, 0, 0);
      return false;
    }
    if (!shed_done && deferrals >= config_.shed_after_deferrals) {
      // Sustained pressure: shed queued work below this request's priority
      // so those clients back off instead of compounding the demand.
      shed_below(priority);
      shed_done = true;
    }
    std::unique_lock<std::mutex> slk(sessions_mutex_);
    roots_released_cv_.wait_for(slk, config_.deferral_wait);
  }
}

std::size_t BddService::shed_below(Priority above) {
  std::vector<Request> victims;
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    for (unsigned p = 0; p < static_cast<unsigned>(above); ++p) {
      for (Request& r : queues_[p]) victims.push_back(std::move(r));
      queued_total_ -= queues_[p].size();
      queues_[p].clear();
    }
  }
  if (!victims.empty()) {
    space_cv_.notify_all();
    PBDD_TRACE_INSTANT(kServiceShed, victims.size(), 0);
  }
  for (Request& r : victims) resolve(r, RequestStatus::kShed);
  return victims.size();
}

// ---- Resolution / metrics ---------------------------------------------------

std::chrono::milliseconds BddService::retry_hint(
    std::size_t scale) const noexcept {
  const std::size_t capped = std::min<std::size_t>(scale, 64);
  return config_.retry_after_base * static_cast<long>(std::max<std::size_t>(
                                        1, capped));
}

void BddService::resolve(Request& req, RequestStatus status,
                         std::chrono::nanoseconds queue_ns,
                         std::chrono::nanoseconds exec_ns) {
  RequestResult r;
  r.status = status;
  r.queue_ns = queue_ns;
  r.exec_ns = exec_ns;
  switch (status) {
    case RequestStatus::kShed:
      m_shed_.fetch_add(1, std::memory_order_relaxed);
      r.retry_after = retry_hint(2);
      PBDD_INJECT(kServiceCancel);
      break;
    case RequestStatus::kExpired:
      m_expired_.fetch_add(1, std::memory_order_relaxed);
      PBDD_INJECT(kServiceCancel);
      break;
    case RequestStatus::kCancelled:
      m_cancelled_.fetch_add(1, std::memory_order_relaxed);
      PBDD_INJECT(kServiceCancel);
      break;
    case RequestStatus::kRejected:
      // Counted at the rejection site (queue-full vs governor demand).
      r.retry_after = retry_hint(4);
      break;
    default:
      break;
  }
  req.promise.set_value(std::move(r));
}

void BddService::quiesce_and(const std::function<void(core::BddManager&)>& fn) {
  std::lock_guard<std::mutex> lk(manager_mutex_);
  fn(mgr_);
}

ServiceMetrics BddService::metrics() const {
  ServiceMetrics m;
  m.submitted = m_submitted_.load(std::memory_order_relaxed);
  m.admitted = m_admitted_.load(std::memory_order_relaxed);
  m.completed = m_completed_.load(std::memory_order_relaxed);
  m.rejected_queue_full = m_rejected_queue_full_.load(std::memory_order_relaxed);
  m.rejected_quota = m_rejected_quota_.load(std::memory_order_relaxed);
  m.rejected_demand = m_rejected_demand_.load(std::memory_order_relaxed);
  m.shed = m_shed_.load(std::memory_order_relaxed);
  m.expired = m_expired_.load(std::memory_order_relaxed);
  m.cancelled = m_cancelled_.load(std::memory_order_relaxed);
  m.deferrals = m_deferrals_.load(std::memory_order_relaxed);
  m.governor_gcs = m_governor_gcs_.load(std::memory_order_relaxed);
  m.batches_executed = m_batches_executed_.load(std::memory_order_relaxed);
  m.ops_executed = m_ops_executed_.load(std::memory_order_relaxed);
  m.live_node_budget = config_.live_node_budget;
  m.max_live_nodes_observed =
      m_max_live_observed_.load(std::memory_order_relaxed);
  m.max_allocated_observed =
      m_max_allocated_observed_.load(std::memory_order_relaxed);
  m.demand_per_op =
      static_cast<double>(m_demand_per_op_milli_.load(
          std::memory_order_relaxed)) /
      1000.0;
  m.snapshots_saved = m_snapshots_saved_.load(std::memory_order_relaxed);
  m.snapshots_restored = m_snapshots_restored_.load(std::memory_order_relaxed);
  m.snapshot_failures = m_snapshot_failures_.load(std::memory_order_relaxed);
  m.snapshot_bytes_written = m_snapshot_bytes_.load(std::memory_order_relaxed);
  m.snapshot_nodes_restored =
      m_snapshot_nodes_restored_.load(std::memory_order_relaxed);
  m.snapshot_pause_ns_last = m_pause_last_ns_.load(std::memory_order_relaxed);
  m.snapshot_pause_ns_max = m_pause_max_ns_.load(std::memory_order_relaxed);
  m.fault_campaigns_completed =
      m_fault_completed_.load(std::memory_order_relaxed);
  m.fault_campaigns_cancelled =
      m_fault_cancelled_.load(std::memory_order_relaxed);
  m.fault_faults_evaluated = m_fault_evaluated_.load(std::memory_order_relaxed);
  m.fault_faults_detected = m_fault_detected_.load(std::memory_order_relaxed);
  m.fault_faults_equivalent =
      m_fault_equivalent_.load(std::memory_order_relaxed);
  m.fault_batches = m_fault_batches_.load(std::memory_order_relaxed);
  m.demand_estimates = m_demand_estimates_.load(std::memory_order_relaxed);
  if (pager_ != nullptr) {
    const ooc::PagerStats ps = pager_->stats();
    m.ooc_demotions = ps.demotions;
    m.ooc_faults = ps.faults;
    m.ooc_prefetch_hits = ps.prefetch_hits;
    m.ooc_bytes_written = ps.bytes_written;
    m.ooc_bytes_read = ps.bytes_read;
    m.ooc_spilled_levels = ps.spilled_levels;
    m.ooc_spilled_nodes = ps.spilled_nodes;
  }
  {
    std::lock_guard<std::mutex> lk(snapshot_mutex_);
    if (!pause_samples_ns_.empty()) {
      std::vector<std::uint64_t> sorted(pause_samples_ns_);
      const std::size_t idx =
          std::min(sorted.size() - 1, (sorted.size() * 95) / 100);
      const auto nth = sorted.begin() + static_cast<std::ptrdiff_t>(idx);
      std::nth_element(sorted.begin(), nth, sorted.end());
      m.snapshot_pause_ns_p95 = *nth;
    }
  }
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    m.queue_depth = queued_total_;
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    m.open_sessions = open_sessions_;
  }
  return m;
}

std::string BddService::metrics_json() {
  const ServiceMetrics m = metrics();
  std::string engine;
  {
    std::lock_guard<std::mutex> lk(manager_mutex_);
    engine = mgr_.stats().to_json();
  }
  std::string out = "{";
  const auto field = [&](const char* name, std::uint64_t v) {
    out += '"';
    out += name;
    out += "\": ";
    out += std::to_string(v);
    out += ", ";
  };
  field("submitted", m.submitted);
  field("admitted", m.admitted);
  field("completed", m.completed);
  field("rejected_queue_full", m.rejected_queue_full);
  field("rejected_quota", m.rejected_quota);
  field("rejected_demand", m.rejected_demand);
  field("shed", m.shed);
  field("expired", m.expired);
  field("cancelled", m.cancelled);
  field("deferrals", m.deferrals);
  field("governor_gcs", m.governor_gcs);
  field("batches_executed", m.batches_executed);
  field("ops_executed", m.ops_executed);
  field("queue_depth", m.queue_depth);
  field("open_sessions", m.open_sessions);
  field("live_node_budget", m.live_node_budget);
  field("max_live_nodes_observed", m.max_live_nodes_observed);
  field("max_allocated_observed", m.max_allocated_observed);
  field("snapshots_saved", m.snapshots_saved);
  field("snapshots_restored", m.snapshots_restored);
  field("snapshot_failures", m.snapshot_failures);
  field("snapshot_bytes_written", m.snapshot_bytes_written);
  field("snapshot_nodes_restored", m.snapshot_nodes_restored);
  field("snapshot_pause_ns_last", m.snapshot_pause_ns_last);
  field("snapshot_pause_ns_max", m.snapshot_pause_ns_max);
  field("snapshot_pause_ns_p95", m.snapshot_pause_ns_p95);
  field("fault_campaigns_completed", m.fault_campaigns_completed);
  field("fault_campaigns_cancelled", m.fault_campaigns_cancelled);
  field("fault_faults_evaluated", m.fault_faults_evaluated);
  field("fault_faults_detected", m.fault_faults_detected);
  field("fault_faults_equivalent", m.fault_faults_equivalent);
  field("fault_batches", m.fault_batches);
  field("ooc_demotions", m.ooc_demotions);
  field("ooc_faults", m.ooc_faults);
  field("ooc_prefetch_hits", m.ooc_prefetch_hits);
  field("ooc_bytes_written", m.ooc_bytes_written);
  field("ooc_bytes_read", m.ooc_bytes_read);
  field("ooc_spilled_levels", m.ooc_spilled_levels);
  field("ooc_spilled_nodes", m.ooc_spilled_nodes);
  field("demand_estimates", m.demand_estimates);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"demand_per_op\": %.3f, ",
                m.demand_per_op);
  out += buf;
  out += "\"engine\": ";
  out += engine;
  out += "}";
  return out;
}

std::string BddService::metrics_text() {
  const ServiceMetrics m = metrics();
  // A fresh registry per exposition: every source counter is cumulative
  // already, so publishing into a long-lived registry would double-count.
  obs::Registry reg;

  // The conventional liveness gauge: a scrape that reaches this process at
  // all reports 1, so dashboards can distinguish "service down" from "no
  // traffic" without a separate probe.
  reg.gauge("pbdd_service_up", "1 while the service dispatcher is running")
      .set(1.0);

  const char* kReqHelp = "Requests by lifecycle event";
  reg.counter("pbdd_service_requests_total", kReqHelp,
              {{"event", "submitted"}})
      .add(m.submitted);
  reg.counter("pbdd_service_requests_total", kReqHelp, {{"event", "admitted"}})
      .add(m.admitted);
  reg.counter("pbdd_service_requests_total", kReqHelp, {{"event", "completed"}})
      .add(m.completed);

  const char* kRejHelp = "Rejected requests by reason";
  reg.counter("pbdd_service_rejected_total", kRejHelp,
              {{"reason", "queue_full"}})
      .add(m.rejected_queue_full);
  reg.counter("pbdd_service_rejected_total", kRejHelp, {{"reason", "quota"}})
      .add(m.rejected_quota);
  reg.counter("pbdd_service_rejected_total", kRejHelp, {{"reason", "demand"}})
      .add(m.rejected_demand);

  const char* kDropHelp = "Requests dropped after admission, by reason";
  reg.counter("pbdd_service_dropped_total", kDropHelp, {{"reason", "shed"}})
      .add(m.shed);
  reg.counter("pbdd_service_dropped_total", kDropHelp, {{"reason", "expired"}})
      .add(m.expired);
  reg.counter("pbdd_service_dropped_total", kDropHelp,
              {{"reason", "cancelled"}})
      .add(m.cancelled);

  reg.counter("pbdd_service_deferrals_total", "Governor admission deferrals")
      .add(m.deferrals);
  reg.counter("pbdd_service_governor_gc_total",
              "Collections triggered by the memory governor")
      .add(m.governor_gcs);
  reg.counter("pbdd_service_batches_total", "Executed top-level batches")
      .add(m.batches_executed);
  reg.counter("pbdd_service_ops_total", "Executed top-level operations")
      .add(m.ops_executed);

  reg.gauge("pbdd_service_queue_depth", "Admission queue depth (sampled)")
      .set(static_cast<double>(m.queue_depth));
  reg.gauge("pbdd_service_open_sessions", "Open sessions (sampled)")
      .set(static_cast<double>(m.open_sessions));
  reg.gauge("pbdd_service_live_node_budget", "Governor live-node budget")
      .set(static_cast<double>(m.live_node_budget));
  reg.gauge("pbdd_service_max_live_nodes",
            "Max live nodes observed after governor action")
      .set(static_cast<double>(m.max_live_nodes_observed));
  reg.gauge("pbdd_service_max_allocated_nodes",
            "Max allocated nodes observed before governor action")
      .set(static_cast<double>(m.max_allocated_observed));
  reg.gauge("pbdd_service_demand_per_op",
            "Calibrated node-demand estimate per operation")
      .set(m.demand_per_op);

  const char* kSnapHelp = "Snapshot operations by kind";
  reg.counter("pbdd_service_snapshots_total", kSnapHelp, {{"op", "save"}})
      .add(m.snapshots_saved);
  reg.counter("pbdd_service_snapshots_total", kSnapHelp, {{"op", "restore"}})
      .add(m.snapshots_restored);
  reg.counter("pbdd_service_snapshot_failures_total",
              "Failed snapshot saves/restores")
      .add(m.snapshot_failures);
  reg.counter("pbdd_service_snapshot_bytes_written_total",
              "Bytes written by snapshot saves")
      .add(m.snapshot_bytes_written);
  reg.counter("pbdd_service_snapshot_nodes_restored_total",
              "Nodes streamed in by snapshot restores")
      .add(m.snapshot_nodes_restored);

  const char* kCampHelp = "Fault campaigns by outcome";
  reg.counter("pbdd_service_fault_campaigns_total", kCampHelp,
              {{"outcome", "completed"}})
      .add(m.fault_campaigns_completed);
  reg.counter("pbdd_service_fault_campaigns_total", kCampHelp,
              {{"outcome", "cancelled"}})
      .add(m.fault_campaigns_cancelled);
  const char* kFaultHelp = "Stuck-at faults by verdict";
  reg.counter("pbdd_service_faults_total", kFaultHelp,
              {{"verdict", "detected"}})
      .add(m.fault_faults_detected);
  reg.counter("pbdd_service_faults_total", kFaultHelp,
              {{"verdict", "equivalent"}})
      .add(m.fault_faults_equivalent);
  reg.counter("pbdd_service_fault_batches_total",
              "Engine batches issued by fault campaigns")
      .add(m.fault_batches);

  const char* kOocEvtHelp = "Out-of-core pager events";
  reg.counter("pbdd_service_ooc_events_total", kOocEvtHelp,
              {{"event", "demote"}})
      .add(m.ooc_demotions);
  reg.counter("pbdd_service_ooc_events_total", kOocEvtHelp,
              {{"event", "fault"}})
      .add(m.ooc_faults);
  reg.counter("pbdd_service_ooc_events_total", kOocEvtHelp,
              {{"event", "prefetch_hit"}})
      .add(m.ooc_prefetch_hits);
  const char* kOocBytesHelp = "Spill segment bytes by direction";
  reg.counter("pbdd_service_ooc_bytes_total", kOocBytesHelp,
              {{"dir", "written"}})
      .add(m.ooc_bytes_written);
  reg.counter("pbdd_service_ooc_bytes_total", kOocBytesHelp,
              {{"dir", "read"}})
      .add(m.ooc_bytes_read);
  reg.gauge("pbdd_service_ooc_spilled_levels",
            "Variable levels currently spilled to disk")
      .set(static_cast<double>(m.ooc_spilled_levels));
  reg.gauge("pbdd_service_ooc_spilled_nodes",
            "Node slots currently spilled to disk")
      .set(static_cast<double>(m.ooc_spilled_nodes));
  reg.counter("pbdd_service_demand_estimates_total",
              "Admissions priced by the max-cut demand estimator")
      .add(m.demand_estimates);

  const char* kPauseHelp = "Checkpoint stop-the-world pause (ns)";
  reg.gauge("pbdd_service_checkpoint_pause_ns", kPauseHelp,
            {{"stat", "last"}})
      .set(static_cast<double>(m.snapshot_pause_ns_last));
  reg.gauge("pbdd_service_checkpoint_pause_ns", kPauseHelp, {{"stat", "max"}})
      .set(static_cast<double>(m.snapshot_pause_ns_max));
  reg.gauge("pbdd_service_checkpoint_pause_ns", kPauseHelp, {{"stat", "p95"}})
      .set(static_cast<double>(m.snapshot_pause_ns_p95));

  {
    // Engine totals only: per-worker/per-var series are a trace-analysis
    // concern, not a scrape concern.
    std::lock_guard<std::mutex> lk(manager_mutex_);
    core::publish_stats(mgr_.stats(), reg,
                        {.per_worker = false, .per_var = false});
  }
  return reg.prometheus_text();
}

}  // namespace pbdd::service
