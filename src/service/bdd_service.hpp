// Multi-session BDD service runtime.
//
// BddService multiplexes many concurrent client *sessions* onto one
// BddManager + worker pool. The engine's external-call contract is "one
// thread at a time", so the service funnels every batch through a single
// dispatcher thread; concurrency between clients comes from the admission
// queue, parallelism inside a batch from the engine's own worker pool (the
// paper's top-level-operation batches).
//
// The pieces, in request order:
//
//  * Admission queue — bounded, three priority classes, FIFO within a
//    class. A full queue exerts backpressure: submit() blocks (the default)
//    or returns kRejected with a retry-after hint. The queue can never grow
//    without bound.
//  * Deadlines/cancellation — a request may carry a deadline; it is checked
//    at admission and threaded into batch execution as a core::BatchControl,
//    whose checkpoints in Worker::run_batch make an expired batch stop
//    claiming items and release its partial work.
//  * Per-session root registry + node quota — completed results are
//    registered under their session; a session whose accounted nodes exceed
//    its quota gets kQuotaExceeded until it releases roots, so one session
//    cannot starve the shared store.
//  * Memory-pressure governor — estimates a batch's node demand from the
//    ManagerStats history (created-nodes-per-op over a sliding window),
//    runs a collection when the projection would exceed the live-node
//    budget, defers admission while other sessions may still release
//    memory, sheds lowest-priority queued requests under sustained
//    pressure, and finally rejects with a retry-after hint rather than
//    blowing the budget.
//
// Lifetime contract: like Bdd/BddManager, every Bdd handle a client received
// from the service must be dropped before the BddService is destroyed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "circuit/netlist.hpp"
#include "core/bdd_manager.hpp"
#include "fault/fault.hpp"

namespace pbdd::ooc {
class LevelPager;
}  // namespace pbdd::ooc

namespace pbdd::service {

using SessionId = std::uint32_t;
inline constexpr SessionId kInvalidSession = 0;

enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr unsigned kNumPriorities = 3;

enum class RequestStatus : std::uint8_t {
  kOk = 0,        ///< all operations executed; results in RequestResult::roots
  kRejected,      ///< backpressure or sustained memory pressure; retry later
  kShed,          ///< dropped from the queue by the governor under pressure
  kExpired,       ///< deadline passed before or during execution
  kCancelled,     ///< session cancelled or closed, or service shutting down
  kQuotaExceeded, ///< session over its node quota; release roots first
  kFailed,        ///< invalid request (unknown session, bad operands)
};

[[nodiscard]] const char* request_status_name(RequestStatus s) noexcept;

struct ServiceConfig {
  /// Variables of the shared manager (every session addresses the same
  /// variable space; cross-session sharing in the unique tables is free).
  unsigned num_vars = 16;
  core::Config engine;

  /// Total queued requests across all priority classes (bound, enforced).
  std::size_t queue_capacity = 256;
  std::size_t max_sessions = 256;

  /// Per-session quota: sum of node_count over the session's registered
  /// roots (shared subgraphs count once per root — an upper bound).
  std::size_t session_node_quota = std::size_t{1} << 22;

  /// Governor budget on the store's allocated node slots.
  std::size_t live_node_budget = std::size_t{1} << 24;
  /// Sliding calibration window (completed batches) for the demand model.
  unsigned governor_history = 64;
  /// Demand estimate before any history exists, in nodes per operation.
  double bootstrap_demand_per_op = 256.0;
  /// Over-budget deferrals before lower-priority queued work is shed, and
  /// again before the head request itself is rejected.
  unsigned shed_after_deferrals = 3;
  /// How long one deferral waits for other sessions to release roots.
  std::chrono::milliseconds deferral_wait{2};
  /// Base of the retry-after hint (scaled by queue depth / deferrals).
  std::chrono::milliseconds retry_after_base{5};

  /// Periodic checkpoint: after every N executed batches the dispatcher
  /// self-enqueues one high-priority snapshot of every session's registered
  /// roots to checkpoint_path (0 = off). The checkpoint rides the admission
  /// queue like any client request, so it serializes against in-flight
  /// batches and the governor; at most one is ever pending.
  std::uint64_t checkpoint_every_batches = 0;
  std::string checkpoint_path = "pbdd_checkpoint.snap";

  /// Out-of-core paging tier (docs/OOC.md). Non-empty: cold levels spill to
  /// this directory, and the governor demotes before it defers — and defers
  /// before it sheds. The directory must exist and be writable.
  std::string spill_dir;
  /// Pager resident-node target for barrier-time demotion (0 = demote only
  /// when the governor projects a budget overflow).
  std::size_t pager_node_budget = 0;
  /// Price each batch with the max-cut demand estimator (src/ooc/demand.hpp)
  /// when its estimate is exact; history model otherwise.
  bool use_demand_estimator = false;
};

struct SubmitOptions {
  Priority priority = Priority::kNormal;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Block while the admission queue is full (backpressure). When false a
  /// full queue rejects immediately with a retry-after hint.
  bool block_on_full = true;
  /// Register results in the session's root registry (they then count
  /// against the quota and survive until released or the session closes).
  bool register_roots = true;
};

/// Client-facing knobs of a fault-campaign request (the service supplies
/// the cancellation control and ordering itself).
struct FaultCampaignOptions {
  std::size_t batch_faults = 32;  ///< fault::FaultSimOptions::batch_faults
  std::size_t max_nets = 0;       ///< fault::FaultSimOptions::max_nets
};

/// Result payload of a completed fault campaign: verdicts, engine-side
/// stats, and the canonical SHA-sealed report (docs/FAULTSIM.md).
struct FaultCampaignOutcome {
  std::vector<fault::NetFaultResult> results;
  fault::CampaignStats stats;
  std::string report;
};

struct RequestResult {
  RequestStatus status = RequestStatus::kFailed;
  /// One handle per operation, in request order; valid only for kOk.
  std::vector<core::Bdd> roots;
  /// Campaign payload; set only for kOk fault-campaign requests.
  std::shared_ptr<const FaultCampaignOutcome> fault;
  std::chrono::nanoseconds queue_ns{0};  ///< admission to dispatch
  std::chrono::nanoseconds exec_ns{0};   ///< batch execution
  /// Backoff hint accompanying kRejected / kShed / kQuotaExceeded.
  std::chrono::milliseconds retry_after{0};
  std::string error;
};

/// Monotonic counters + governor gauges (all since construction).
struct ServiceMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;          ///< handed to the engine
  std::uint64_t completed = 0;         ///< resolved kOk
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_demand = 0;   ///< governor gave up after deferrals
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t governor_gcs = 0;
  std::uint64_t batches_executed = 0;
  std::uint64_t ops_executed = 0;
  std::size_t queue_depth = 0;           ///< sampled now
  std::size_t open_sessions = 0;         ///< sampled now
  std::size_t live_node_budget = 0;
  std::size_t max_live_nodes_observed = 0;   ///< after governor action
  std::size_t max_allocated_observed = 0;    ///< before governor action
  double demand_per_op = 0.0;            ///< current calibrated estimate

  // Snapshot counters. Pause = wall time the manager lock was held for a
  // save (the stop-the-world cost clients observe as added queue latency);
  // the p95 is over a bounded window of recent saves.
  std::uint64_t snapshots_saved = 0;
  std::uint64_t snapshots_restored = 0;
  std::uint64_t snapshot_failures = 0;
  std::uint64_t snapshot_bytes_written = 0;
  std::uint64_t snapshot_nodes_restored = 0;
  std::uint64_t snapshot_pause_ns_last = 0;
  std::uint64_t snapshot_pause_ns_max = 0;
  std::uint64_t snapshot_pause_ns_p95 = 0;

  // Fault-campaign counters (src/fault/ requests).
  std::uint64_t fault_campaigns_completed = 0;
  std::uint64_t fault_campaigns_cancelled = 0;
  std::uint64_t fault_faults_evaluated = 0;
  std::uint64_t fault_faults_detected = 0;
  std::uint64_t fault_faults_equivalent = 0;
  std::uint64_t fault_batches = 0;  ///< engine batches issued by campaigns

  // Out-of-core pager (src/ooc/; all zero when no spill_dir is configured).
  std::uint64_t ooc_demotions = 0;
  std::uint64_t ooc_faults = 0;
  std::uint64_t ooc_prefetch_hits = 0;
  std::uint64_t ooc_bytes_written = 0;
  std::uint64_t ooc_bytes_read = 0;
  std::uint64_t ooc_spilled_levels = 0;  ///< gauge, sampled now
  std::uint64_t ooc_spilled_nodes = 0;   ///< gauge, sampled now
  std::uint64_t demand_estimates = 0;  ///< admissions priced by the estimator
};

class BddService {
 public:
  explicit BddService(ServiceConfig config);
  /// Cancels all queued work, joins the dispatcher, releases every
  /// session's roots. Client-held handles must already be gone.
  ~BddService();

  BddService(const BddService&) = delete;
  BddService& operator=(const BddService&) = delete;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

  // ---- Sessions -------------------------------------------------------------
  /// Returns kInvalidSession when max_sessions are already open.
  [[nodiscard]] SessionId open_session();
  /// Cancels queued and in-flight work of the session and releases its
  /// registered roots. Idempotent.
  void close_session(SessionId session);
  /// Cancel queued + in-flight work but keep the session and its roots.
  void cancel_session(SessionId session);
  /// Drop the session's registered roots (frees its quota; the nodes become
  /// collectible once client-held copies are gone).
  void release_session_roots(SessionId session);
  [[nodiscard]] std::size_t session_accounted_nodes(SessionId session) const;

  // ---- Operand handles (safe from any thread: pre-built, copy-only) --------
  [[nodiscard]] core::Bdd var(unsigned v) const;
  [[nodiscard]] core::Bdd nvar(unsigned v) const;
  [[nodiscard]] core::Bdd zero() const { return zero_; }
  [[nodiscard]] core::Bdd one() const { return one_; }

  // ---- Requests -------------------------------------------------------------
  /// Queue a batch of independent operations. The future resolves with the
  /// results or a non-kOk status; it never blocks forever (shutdown resolves
  /// everything kCancelled).
  [[nodiscard]] std::future<RequestResult> submit(
      SessionId session, std::vector<core::BatchOp> ops,
      SubmitOptions options = {});
  /// submit() + wait.
  [[nodiscard]] RequestResult execute(SessionId session,
                                      std::vector<core::BatchOp> ops,
                                      SubmitOptions options = {});

  // ---- Fault campaigns ------------------------------------------------------
  /// Queue a stuck-at fault campaign over `circuit` (must be binarized;
  /// shared_ptr because the request can outlive the caller's scope in the
  /// queue). Rides the admission queue like a batch: priority-ordered,
  /// deadline- and cancel_session-aware (the campaign stops at the next
  /// wave checkpoint), governed by the memory budget. The future's
  /// RequestResult carries a FaultCampaignOutcome on kOk.
  [[nodiscard]] std::future<RequestResult> submit_fault_campaign(
      SessionId session, std::shared_ptr<const circuit::Circuit> circuit,
      FaultCampaignOptions campaign = {}, SubmitOptions options = {});
  /// submit_fault_campaign() + wait.
  [[nodiscard]] RequestResult run_fault_campaign(
      SessionId session, std::shared_ptr<const circuit::Circuit> circuit,
      FaultCampaignOptions campaign = {}, SubmitOptions options = {});

  // ---- Checkpoint / restore -------------------------------------------------
  /// Queue a reachable-only snapshot of the session's registered roots to
  /// `path` (src/snapshot/ export mode). Rides the admission queue, so it
  /// serializes against in-flight batches; the future resolves kOk once the
  /// file is on disk (exec_ns = the stop-the-world save pause).
  [[nodiscard]] std::future<RequestResult> save_session(
      SessionId session, std::string path, SubmitOptions options = {});
  /// Queue a restore: stream the snapshot's nodes into the shared store
  /// (deduplicating against live nodes) and register its roots under
  /// `session`. The future's RequestResult carries the restored handles in
  /// root-table order.
  [[nodiscard]] std::future<RequestResult> restore_session(
      SessionId session, std::string path, SubmitOptions options = {});

  /// Queue an export snapshot of EVERY session's registered roots — the
  /// request the periodic internal checkpoint enqueues, triggered
  /// externally. Root names follow the checkpoint convention "s<sid>/r<i>"
  /// (sessions ascending). The replication writer ships these files to the
  /// read replicas (src/replica/writer.hpp).
  [[nodiscard]] std::future<RequestResult> save_all(std::string path,
                                                    SubmitOptions options = {});

  // ---- Writer-local reads ---------------------------------------------------
  /// Read ops the replication router can fail over to the writer
  /// (src/replica/router.hpp). Mirrors repl::ReadOp.
  enum class ReadKind : std::uint8_t { kEval, kSatCount, kRootInfo };
  struct ReadAnswer {
    bool ok = false;
    std::uint64_t value = 0;  ///< eval: 0/1; root_info: node count
    double sat = 0.0;         ///< sat_count
    std::string error;
  };
  /// Resolve a checkpoint-convention root name ("s<sid>/r<i>") and run one
  /// read against the live store. Serializes with batch execution on the
  /// manager mutex — the failover path, not a bulk-read path.
  [[nodiscard]] ReadAnswer read_root(const std::string& name, ReadKind kind,
                                     const std::vector<bool>& assignment = {});

  // ---- Introspection --------------------------------------------------------
  /// Run `fn` on the quiesced manager: no batch in flight, dispatcher held
  /// off. For metrics, validation, and invariant checks. `fn` must not call
  /// back into the service.
  void quiesce_and(const std::function<void(core::BddManager&)>& fn);

  [[nodiscard]] ServiceMetrics metrics() const;
  /// Service counters + governor gauges + the engine's ManagerStats, all in
  /// one JSON object (shares ManagerStats::to_json with the bench dumps).
  [[nodiscard]] std::string metrics_json();
  /// The same data in Prometheus text exposition format: admission,
  /// governor, checkpoint-pause, and engine counter families (rendered
  /// through obs::Registry; see docs/OBSERVABILITY.md for the catalog).
  [[nodiscard]] std::string metrics_text();

 private:
  struct Request {
    enum class Kind : std::uint8_t {
      kBatch,
      kSaveSnapshot,
      kRestoreSnapshot,
      kFaultCampaign,
    };
    Kind kind = Kind::kBatch;
    /// Fault-campaign payload (kFaultCampaign kind only).
    std::shared_ptr<const circuit::Circuit> fault_circuit;
    FaultCampaignOptions fault_options;
    /// Snapshot file path (save/restore kinds). A save with
    /// session == kInvalidSession is the internal periodic checkpoint and
    /// covers every session's roots.
    std::string snapshot_path;
    SessionId session = kInvalidSession;
    /// Session cancel epoch at submit time: cancel_session bumps the
    /// session's epoch, lazily expiring everything queued before the bump.
    std::uint64_t session_epoch = 0;
    Priority priority = Priority::kNormal;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    bool register_roots = true;
    std::vector<core::BatchOp> ops;  // handles keep operand roots alive
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Trace context: minted at admission (enqueue); the dispatcher binds it
    /// while executing so every record the request produces — admit, GC
    /// attribution, checkpoint spans, downstream ships — carries the id.
    std::uint64_t trace_id = 0;
  };

  struct SessionState {
    std::uint64_t epoch = 0;  ///< bumped by cancel_session
    std::vector<core::Bdd> roots;
    std::size_t accounted_nodes = 0;
  };

  void dispatcher_loop();
  void process_request(Request req);
  void process_save(Request& req, std::chrono::nanoseconds queue_ns);
  void process_restore(Request& req, std::chrono::nanoseconds queue_ns);
  void process_fault(Request& req, std::chrono::nanoseconds queue_ns);
  /// Shared queue push with backpressure (the tail of submit()).
  [[nodiscard]] std::future<RequestResult> enqueue(
      Request req, const SubmitOptions& options,
      std::future<RequestResult> fut);
  /// Validation + queueing shared by save_session/restore_session.
  [[nodiscard]] std::future<RequestResult> submit_snapshot(
      Request::Kind kind, SessionId session, std::string path,
      const SubmitOptions& options);
  /// Self-enqueue the periodic checkpoint when the batch counter hits the
  /// configured interval (at most one pending at a time).
  void maybe_enqueue_checkpoint();
  void record_pause(std::uint64_t ns);
  /// Governor admission for `ops` operations. Returns true to execute,
  /// false after resolving the request itself is required (rejected).
  /// `batch` (optional) lets the max-cut demand estimator price the actual
  /// operands instead of the history model.
  bool governor_admit(std::size_t ops, Priority priority,
                      std::span<const core::BatchOp> batch = {});
  /// Resolve every queued request with priority strictly below `above` as
  /// kShed. Returns how many were shed.
  std::size_t shed_below(Priority above);
  /// Flip the in-flight batch's cancel flag if it belongs to `session`.
  void cancel_inflight_if(SessionId session);
  void resolve(Request& req, RequestStatus status,
               std::chrono::nanoseconds queue_ns = {},
               std::chrono::nanoseconds exec_ns = {});
  [[nodiscard]] std::chrono::milliseconds retry_hint(
      std::size_t scale) const noexcept;
  [[nodiscard]] double demand_per_op_locked() const;

  const ServiceConfig config_;

  // Declared first so it is destroyed last: every Bdd member below (session
  // registries, operand handles) must die before the manager.
  core::BddManager mgr_;

  /// Serializes all manager access: dispatcher batch execution and
  /// quiesce_and() callers.
  std::mutex manager_mutex_;

  /// Out-of-core paging tier; null unless config_.spill_dir is set.
  /// Declared after mgr_ so it detaches before the manager dies.
  std::unique_ptr<ooc::LevelPager> pager_;

  // Pre-built operand handles (handle copies are thread-safe).
  std::vector<core::Bdd> vars_;
  std::vector<core::Bdd> nvars_;
  core::Bdd zero_;
  core::Bdd one_;

  // Admission queue (guarded by queue_mutex_).
  mutable std::mutex queue_mutex_;
  std::condition_variable work_cv_;   ///< dispatcher waits for requests
  std::condition_variable space_cv_;  ///< blocked submitters wait for room
  std::deque<Request> queues_[kNumPriorities];
  std::size_t queued_total_ = 0;
  bool stopping_ = false;
  bool checkpoint_pending_ = false;  ///< an internal checkpoint is queued

  // Sessions (guarded by sessions_mutex_).
  mutable std::mutex sessions_mutex_;
  std::condition_variable roots_released_cv_;  ///< wakes deferred governor
  std::unordered_map<SessionId, SessionState> sessions_;
  SessionId next_session_ = 1;
  std::size_t open_sessions_ = 0;

  // In-flight batch (guarded by inflight_mutex_) so cancel_session can
  // reach a batch already handed to the engine.
  std::mutex inflight_mutex_;
  SessionId inflight_session_ = kInvalidSession;
  core::BatchControl* inflight_control_ = nullptr;

  // Governor calibration (guarded by manager_mutex_: dispatcher-only).
  std::deque<double> demand_samples_;  ///< created nodes per op, per batch
  std::uint64_t last_nodes_created_ = 0;

  // Metrics (atomics: read from any thread).
  std::atomic<std::uint64_t> m_submitted_{0};
  std::atomic<std::uint64_t> m_admitted_{0};
  std::atomic<std::uint64_t> m_completed_{0};
  std::atomic<std::uint64_t> m_rejected_queue_full_{0};
  std::atomic<std::uint64_t> m_rejected_quota_{0};
  std::atomic<std::uint64_t> m_rejected_demand_{0};
  std::atomic<std::uint64_t> m_shed_{0};
  std::atomic<std::uint64_t> m_expired_{0};
  std::atomic<std::uint64_t> m_cancelled_{0};
  std::atomic<std::uint64_t> m_deferrals_{0};
  std::atomic<std::uint64_t> m_governor_gcs_{0};
  std::atomic<std::uint64_t> m_batches_executed_{0};
  std::atomic<std::uint64_t> m_ops_executed_{0};
  std::atomic<std::size_t> m_max_live_observed_{0};
  std::atomic<std::size_t> m_max_allocated_observed_{0};
  std::atomic<std::uint64_t> m_demand_per_op_milli_{0};
  std::atomic<std::uint64_t> m_demand_estimates_{0};

  // Snapshot metrics; the bounded pause window feeds the p95 gauge.
  std::atomic<std::uint64_t> m_snapshots_saved_{0};
  std::atomic<std::uint64_t> m_snapshots_restored_{0};
  std::atomic<std::uint64_t> m_snapshot_failures_{0};
  std::atomic<std::uint64_t> m_snapshot_bytes_{0};
  std::atomic<std::uint64_t> m_snapshot_nodes_restored_{0};
  std::atomic<std::uint64_t> m_pause_last_ns_{0};
  std::atomic<std::uint64_t> m_pause_max_ns_{0};

  // Fault-campaign metrics.
  std::atomic<std::uint64_t> m_fault_completed_{0};
  std::atomic<std::uint64_t> m_fault_cancelled_{0};
  std::atomic<std::uint64_t> m_fault_evaluated_{0};
  std::atomic<std::uint64_t> m_fault_detected_{0};
  std::atomic<std::uint64_t> m_fault_equivalent_{0};
  std::atomic<std::uint64_t> m_fault_batches_{0};
  mutable std::mutex snapshot_mutex_;
  std::vector<std::uint64_t> pause_samples_ns_;  ///< bounded ring
  std::size_t pause_next_ = 0;

  std::thread dispatcher_;
};

}  // namespace pbdd::service
