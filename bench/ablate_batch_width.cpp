// Ablation: top-level operation batch width ("issuing superscalarity",
// the concept the paper credits to Ranjan et al. [21] and builds on for
// parallel distribution).
//
// The circuit builder batches all gates of one topological level; this
// harness artificially caps the batch width, showing how the available
// top-level parallelism (and the stealing fallback when batches are
// narrow) affects throughput and the operation count.
#include <cstdio>
#include <iostream>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace pbdd;

/// Level-batched build with a maximum batch width.
double build_capped(core::BddManager& mgr, const bench::Workload& w,
                    std::size_t max_width, std::uint64_t& batches) {
  const circuit::Circuit& bin = w.binarized;
  const auto level = bin.levels();
  const std::uint32_t max_level =
      *std::max_element(level.begin(), level.end());
  std::vector<std::vector<std::uint32_t>> by_level(max_level + 1);
  for (std::uint32_t id = 0; id < bin.num_gates(); ++id) {
    by_level[level[id]].push_back(id);
  }
  std::vector<core::Bdd> value(bin.num_gates());
  std::vector<std::uint32_t> uses = bin.fanout_counts();
  const core::Bdd one = mgr.one();
  util::WallTimer timer;
  batches = 0;
  for (std::uint32_t lvl = 0; lvl <= max_level; ++lvl) {
    std::vector<core::BatchOp> batch;
    std::vector<std::uint32_t> gates;
    auto flush = [&] {
      if (batch.empty()) return;
      auto results = mgr.apply_batch(batch);
      for (std::size_t k = 0; k < gates.size(); ++k) {
        value[gates[k]] = std::move(results[k]);
      }
      ++batches;
      batch.clear();
      gates.clear();
    };
    for (const std::uint32_t id : by_level[lvl]) {
      const circuit::Gate& g = bin.gate(id);
      switch (g.type) {
        case circuit::GateType::Input: {
          const auto pos = static_cast<std::size_t>(
              std::find(bin.inputs().begin(), bin.inputs().end(), id) -
              bin.inputs().begin());
          value[id] = mgr.var(w.order[pos]);
          break;
        }
        case circuit::GateType::Const0: value[id] = mgr.zero(); break;
        case circuit::GateType::Const1: value[id] = mgr.one(); break;
        case circuit::GateType::Buf:
          value[id] = value[g.fanins[0]];
          break;
        case circuit::GateType::Not:
          batch.push_back({Op::Xor, value[g.fanins[0]], one});
          gates.push_back(id);
          break;
        default:
          batch.push_back({circuit::gate_op(g.type), value[g.fanins[0]],
                           value[g.fanins[1]]});
          gates.push_back(id);
          break;
      }
      if (batch.size() >= max_width) flush();
    }
    flush();
    for (const std::uint32_t id : by_level[lvl]) {
      for (const std::uint32_t f : bin.gate(id).fanins) {
        if (--uses[f] == 0) value[f] = core::Bdd{};
      }
    }
  }
  return timer.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv, {"mult-10"});
  const bench::Workload w = bench::make_workload(cli.circuit_specs[0]);
  const unsigned workers = cli.thread_counts.back();

  std::printf("Batch-width ablation on %s (%u threads)\n", w.name.c_str(),
              workers);
  util::TextTable table(
      {"max batch", "elapsed s", "batches", "ops (M)", "stolen groups"});
  for (const std::size_t width : {1ul, 2ul, 8ul, 64ul, 1ul << 20}) {
    core::Config config = bench::config_for(cli, workers, false);
    core::BddManager mgr(w.num_vars, config);
    std::uint64_t batches = 0;
    const double elapsed = build_capped(mgr, w, width, batches);
    table.add_row(
        {width >= (1ul << 20) ? "whole level" : std::to_string(width),
         util::TextTable::num(elapsed, 3), std::to_string(batches),
         util::TextTable::num(
             static_cast<double>(mgr.stats().total.ops_performed) / 1e6, 2),
         std::to_string(mgr.stats().total.groups_stolen)});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nNarrow batches serialize the top level (a one-op batch leaves all\n"
      "other workers dependent on stealing); whole-level batches are the\n"
      "builder's default.\n");
  return 0;
}
