// Reproduces Figure 18 (elapsed time of the garbage collector's mark, fix,
// and rehash phases on the first processor) and Figure 19 (speedups of the
// three phases over the one-processor run) of the paper.
//
// The paper's findings: all three phases speed up >1.5x at 2 processors and
// scale poorly beyond; the rehash phase bottlenecks on the node-heavy
// variables of Fig. 15, just like the reduction phase.
#include <cstdio>
#include <iostream>
#include <map>

#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  bench::Cli cli = bench::parse_cli(argc, argv, {"mult-11"});
  if (cli.gc_min_nodes == core::Config{}.gc_min_nodes) {
    cli.gc_min_nodes = 1u << 18;  // ensure several collections at this scale
  }
  const bench::Workload workload = bench::make_workload(cli.circuit_specs[0]);

  struct GcPhases {
    double mark = 0, fix = 0, rehash = 0;
    std::uint64_t runs = 0;
  };
  std::map<unsigned, GcPhases> grid;

  for (const unsigned t : cli.thread_counts) {
    const core::Config config = bench::config_for(cli, t, false);
    const bench::RunResult r = bench::run_build(workload, config);
    const core::WorkerStats& w0 = r.stats.per_worker[0];
    grid[t] = GcPhases{util::ns_to_s(w0.gc_mark_ns),
                       util::ns_to_s(w0.gc_fix_ns),
                       util::ns_to_s(w0.gc_rehash_ns), r.gc_runs};
    if (cli.csv) {
      std::printf("csv,fig18,%s,%u,%.4f,%.4f,%.4f,%llu\n",
                  workload.name.c_str(), t, grid[t].mark, grid[t].fix,
                  grid[t].rehash,
                  static_cast<unsigned long long>(r.gc_runs));
    }
    std::fflush(stdout);
  }

  std::printf("\nFigure 18: %s garbage-collection phase breakdown on the "
              "first processor (seconds)\n", workload.name.c_str());
  util::TextTable table({"# Procs", "Mark", "Fix", "Rehash", "collections"});
  for (const unsigned t : cli.thread_counts) {
    table.add_row({std::to_string(t), util::TextTable::num(grid[t].mark, 3),
                   util::TextTable::num(grid[t].fix, 3),
                   util::TextTable::num(grid[t].rehash, 3),
                   std::to_string(grid[t].runs)});
  }
  table.print(std::cout);

  const unsigned base = cli.thread_counts.front();
  std::printf("\nFigure 19: speedups of the GC phases over the %u-processor "
              "run\n", base);
  util::TextTable sp({"# Procs", "Mark", "Fix", "Rehash"});
  for (const unsigned t : cli.thread_counts) {
    auto ratio = [&](double b, double v) {
      return util::TextTable::num(v > 0 ? b / v : 0, 2);
    };
    sp.add_row({std::to_string(t), ratio(grid[base].mark, grid[t].mark),
                ratio(grid[base].fix, grid[t].fix),
                ratio(grid[base].rehash, grid[t].rehash)});
  }
  sp.print(std::cout);
  std::printf(
      "\nExpected shape (paper, mult-14): >1.5x at 2 processors for all\n"
      "three phases, poor scaling beyond; rehash is serialized by the\n"
      "node-heavy variables (same cause as the reduction bottleneck).\n");
  return 0;
}
