// Ablation: unique-table lock granularity — the paper's future work.
//
// Section 6: "in order to solve the scaling problem for BDD construction, a
// better distributed hashing algorithm is necessary to reduce this
// synchronization cost." This harness implements and measures exactly that:
// the per-variable unique tables are lock-striped into hash-selected
// segments (Config::table_shards), replacing the one-lock-per-variable
// discipline whose contention Figs. 16/17 expose. With striping, workers
// producing nodes for the same node-heavy variable contend only when their
// hashes land in the same segment.
#include <cstdio>
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  bench::Cli cli = bench::parse_cli(argc, argv, {"mult-10"});
  if (cli.thread_counts == std::vector<unsigned>{1, 2, 4, 8}) {
    cli.thread_counts = {2, 4, 8};
  }
  const bench::Workload w = bench::make_workload(cli.circuit_specs[0]);

  std::printf("Unique-table sharding ablation on %s\n", w.name.c_str());
  util::TextTable table({"# procs", "shards", "elapsed s", "lock wait (s)",
                         "reduction (s)", "wait/reduction"});
  for (const unsigned workers : cli.thread_counts) {
    for (const unsigned shards : {1u, 4u, 16u}) {
      core::Config config = bench::config_for(cli, workers, false);
      config.table_shards = shards;
      const bench::RunResult r = bench::run_build(w, config);
      const double wait = util::ns_to_s(r.stats.total.lock_wait_ns);
      double reduction = 0;
      for (const auto& ws : r.stats.per_worker) {
        reduction += util::ns_to_s(ws.reduction_ns);
      }
      table.add_row(
          {std::to_string(workers), std::to_string(shards),
           util::TextTable::num(r.elapsed_s, 3),
           util::TextTable::num(wait, 3),
           util::TextTable::num(reduction, 3),
           util::TextTable::num(reduction > 0 ? wait / reduction : 0, 3)});
      if (cli.csv) {
        std::printf("csv,ablate_sharding,%s,%u,%u,%.3f,%.4f\n",
                    w.name.c_str(), workers, shards, r.elapsed_s, wait);
      }
      std::fflush(stdout);
    }
  }
  table.print(std::cout);
  std::printf(
      "\nShards = 1 is the paper's one-lock-per-variable reduction; larger\n"
      "shard counts are the Section 6 'distributed hashing' fix. Expected:\n"
      "the lock-wait share collapses as shards grow, at a small per-insert\n"
      "locking overhead. (Per-insert costs dominate on a single-core host;\n"
      "real cores convert the removed waits into reduction-phase speedup.)\n");
  return 0;
}
