// Google-benchmark microbenchmarks for the engine's hot paths: packed-ref
// arithmetic, terminal-case evaluation, node arena allocation, unique-table
// probes, compute-cache probes, and end-to-end apply() throughput on both
// engines. These guard the constants the paper's design leans on: "numerous
// memory references to small data structures with little computational work
// to amortize the cost of each reference" (Section 1).
#include <benchmark/benchmark.h>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "core/compute_cache.hpp"
#include "core/node_arena.hpp"
#include "core/unique_table.hpp"
#include "df/df_manager.hpp"
#include "util/prng.hpp"

namespace {

using namespace pbdd;
using namespace pbdd::core;

void BM_RefPackUnpack(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const unsigned worker = static_cast<unsigned>(rng.below(8));
    const unsigned var = static_cast<unsigned>(rng.below(256));
    const std::uint32_t slot = static_cast<std::uint32_t>(rng.next());
    const Ref r = make_node_ref(worker, var, slot);
    sink += worker_of(r) + var_of(r) + slot_of(r) + level_of(r);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RefPackUnpack);

void BM_TerminalCase(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  const Ref refs[] = {kZero, kOne, make_node_ref(0, 3, 7),
                      make_node_ref(1, 9, 11)};
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const Op op = static_cast<Op>(rng.below(kNumOps));
    const Ref f = refs[rng.below(4)];
    const Ref g = refs[rng.below(4)];
    sink += terminal_case<Ref>(op, f, g, kZero, kOne, kInvalid);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TerminalCase);

void BM_NodeArenaAlloc(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    NodeArena arena;
    state.ResumeTiming();
    for (int i = 0; i < 4096; ++i) {
      const std::uint32_t slot = arena.alloc();
      benchmark::DoNotOptimize(arena.at_own(slot));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_NodeArenaAlloc);

void BM_UniqueTableInsert(benchmark::State& state) {
  const std::int64_t count = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    NodeArena arena;
    VarUniqueTable table;
    table.init(0, {&arena}, 256);
    state.ResumeTiming();
    bool created = false;
    for (std::int64_t i = 0; i < count; ++i) {
      benchmark::DoNotOptimize(table.find_or_insert(
          0, make_node_ref(0, 1, static_cast<std::uint32_t>(i)),
          make_node_ref(0, 2, static_cast<std::uint32_t>(i * 3 + 1)),
          created));
    }
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_UniqueTableInsert)->Arg(1 << 10)->Arg(1 << 14);

void BM_UniqueTableHitLookup(benchmark::State& state) {
  NodeArena arena;
  VarUniqueTable table;
  table.init(0, {&arena}, 256);
  bool created = false;
  constexpr std::uint32_t kNodes = 1u << 14;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    (void)table.find_or_insert(0, make_node_ref(0, 1, i),
                               make_node_ref(0, 2, i), created);
  }
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    const std::uint32_t i = static_cast<std::uint32_t>(rng.below(kNodes));
    benchmark::DoNotOptimize(table.find_or_insert(
        0, make_node_ref(0, 1, i), make_node_ref(0, 2, i), created));
  }
}
BENCHMARK(BM_UniqueTableHitLookup);

void BM_ComputeCacheProbe(benchmark::State& state) {
  ComputeCache cache;
  cache.init(16);
  util::Xoshiro256 rng(7);
  for (std::uint32_t i = 0; i < (1u << 15); ++i) {
    const NodeRef f = make_node_ref(0, 1, i);
    const NodeRef g = make_node_ref(0, 2, i);
    cache.insert(cache.slot_for(Op::And, f, g), Op::And, f, g, kOne, 1);
  }
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const std::uint32_t i =
        static_cast<std::uint32_t>(rng.below(1u << 16));
    const NodeRef f = make_node_ref(0, 1, i);
    const NodeRef g = make_node_ref(0, 2, i);
    hits += cache.lookup(cache.slot_for(Op::And, f, g), Op::And, f, g) !=
            nullptr;
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_ComputeCacheProbe);

/// End-to-end apply throughput: one multiplier output cone per iteration
/// measures ns per Shannon operation.
void BM_CoreApplyThroughput(benchmark::State& state) {
  const auto bin = circuit::multiplier(8).binarized();
  const auto order = circuit::order_dfs(bin);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    Config config;
    config.workers = static_cast<unsigned>(state.range(0));
    config.gc_min_nodes = 1u << 30;
    BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
    const auto outputs = circuit::build_parallel(mgr, bin, order);
    benchmark::DoNotOptimize(outputs);
    ops += mgr.stats().total.ops_performed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_CoreApplyThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_DfApplyThroughput(benchmark::State& state) {
  const auto bin = circuit::multiplier(8).binarized();
  const auto order = circuit::order_dfs(bin);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    df::DfManager mgr(static_cast<unsigned>(bin.inputs().size()));
    const auto outputs =
        circuit::build_sequential<df::DfManager, df::DfBdd>(mgr, bin, order);
    benchmark::DoNotOptimize(outputs);
    ops += mgr.stats().ops_performed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_DfApplyThroughput)->Unit(benchmark::kMillisecond);

void BM_GcFullCycle(benchmark::State& state) {
  // Cost of one full mark/fix/rehash cycle over a ~100k-node heap.
  Config config;
  config.workers = static_cast<unsigned>(state.range(0));
  config.gc_min_nodes = 1u << 30;
  const auto bin = circuit::multiplier(8).binarized();
  const auto order = circuit::order_dfs(bin);
  BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
  const auto outputs = circuit::build_parallel(mgr, bin, order);
  for (auto _ : state) {
    mgr.gc();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                static_cast<std::int64_t>(mgr.live_nodes())));
}
BENCHMARK(BM_GcFullCycle)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
