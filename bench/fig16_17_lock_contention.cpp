// Reproduces Figure 16 (total lock-acquire time on each variable during the
// reduction phase, for 2/4/8 processors) and Figure 17 (lock-acquire time as
// a fraction of the total reduction-phase time versus processor count) of
// the paper.
//
// This is the paper's headline bottleneck measurement: on mult-14 at 8
// processors, waiting for the per-variable unique-table locks was ~50% of
// the reduction phase — over 20% of total running time — concentrated on the
// same few variables Fig. 15 identifies.
//
// Note on single-core hosts: lock *contention* needs truly parallel holders;
// with one hardware core the measured waits collapse to context-switch
// artifacts. Run on a multicore machine for the paper's shape.
#include <cstdio>
#include <iostream>
#include <map>

#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  bench::Cli cli = bench::parse_cli(argc, argv, {"mult-11"});
  // Fig. 16 uses the parallel configurations only.
  if (cli.thread_counts == std::vector<unsigned>{1, 2, 4, 8}) {
    cli.thread_counts = {2, 4, 8};
  }
  const bench::Workload workload = bench::make_workload(cli.circuit_specs[0]);

  std::map<unsigned, std::vector<std::uint64_t>> wait_per_var;
  std::map<unsigned, double> total_wait_s;
  std::map<unsigned, double> reduction_s;

  for (const unsigned t : cli.thread_counts) {
    const core::Config config = bench::config_for(cli, t, false);
    const bench::RunResult r = bench::run_build(workload, config);
    // Read the published metric series instead of ManagerStats fields: the
    // per-variable waits come from pbdd_engine_var_lock_wait_ns_total{var},
    // the aggregates from the engine counter families.
    const obs::Registry& reg = *r.registry;
    std::vector<std::uint64_t> waits(workload.num_vars, 0);
    for (std::size_t v = 0; v < waits.size(); ++v) {
      waits[v] = reg.counter_value("pbdd_engine_var_lock_wait_ns_total",
                                   {{"var", std::to_string(v)}});
    }
    wait_per_var[t] = std::move(waits);
    total_wait_s[t] =
        util::ns_to_s(reg.counter_value("pbdd_engine_lock_wait_ns_total"));
    // Sum of the reduction phase across workers (the ratio in Fig. 17 is
    // lock time over total reduction cost).
    double red = 0;
    for (unsigned w = 0; w < t; ++w) {
      red += util::ns_to_s(reg.counter_value(
          "pbdd_engine_phase_ns_total",
          {{"phase", "reduction"}, {"worker", std::to_string(w)}}));
    }
    reduction_s[t] = red;
    std::fflush(stdout);
  }

  std::printf("\nFigure 16: total lock-acquire time per variable (ms), %s\n",
              workload.name.c_str());
  std::vector<std::string> header{"variable"};
  for (const unsigned t : cli.thread_counts) {
    header.push_back(std::to_string(t) + " procs");
  }
  util::TextTable table(header);
  const std::size_t num_vars = wait_per_var[cli.thread_counts[0]].size();
  for (std::size_t v = 0; v < num_vars; ++v) {
    std::vector<std::string> cells{std::to_string(v)};
    for (const unsigned t : cli.thread_counts) {
      cells.push_back(util::TextTable::num(util::ns_to_ms(wait_per_var[t][v]),
                                           2));
      if (cli.csv) {
        std::printf("csv,fig16,%s,%u,%zu,%.3f\n", workload.name.c_str(), t, v,
                    util::ns_to_ms(wait_per_var[t][v]));
      }
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::printf("\nFigure 17: lock-acquire time / reduction-phase time\n");
  util::TextTable ratio({"# Procs", "lock wait (s)", "reduction (s)",
                         "ratio"});
  for (const unsigned t : cli.thread_counts) {
    const double r =
        reduction_s[t] > 0 ? total_wait_s[t] / reduction_s[t] : 0.0;
    ratio.add_row({std::to_string(t),
                   util::TextTable::num(total_wait_s[t], 3),
                   util::TextTable::num(reduction_s[t], 3),
                   util::TextTable::num(r, 3)});
    if (cli.csv) {
      std::printf("csv,fig17,%s,%u,%.4f\n", workload.name.c_str(), t, r);
    }
  }
  ratio.print(std::cout);
  std::printf(
      "\nExpected shape (paper, mult-14, 8 hardware processors): waits\n"
      "concentrate on the few node-heavy variables of Fig. 15, and the\n"
      "ratio climbs to ~0.5 at 8 processors (i.e. >20%% of total runtime).\n");
  return 0;
}
