// Reproduces Figure 7 (elapsed time for building the BDDs of each circuit,
// "Seq" plus 1/2/4/8 processors) and Figure 8 (speedup over the sequential
// running time) of the paper.
//
// Defaults are the paper-scale workloads (mult-13, mult-14, and the deep
// c2670b): circuits big enough that per-level parallelism dominates the
// scheduling overhead — the regime where the paper's speedup fight is won
// or lost. Pass --circuits mult-10,mult-11 for a quick laptop run.
// Wall-clock speedup requires real cores: on a single-core machine the
// thread sweep still runs but speedups hover around 1.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <thread>

#include "harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli =
      bench::parse_cli(argc, argv, {"c2670b", "mult-13", "mult-14"});
  const std::vector<bench::Workload> workloads = bench::make_workloads(cli);

  struct Cell {
    double elapsed = 0;
    std::uint64_t checksum = 0;
    std::string stats_json;  ///< ManagerStats::to_json (shared serialization)
  };
  std::map<std::string, std::map<std::string, Cell>> grid;  // row -> circuit
  std::vector<std::string> row_labels;

  auto measure = [&](const core::Config& config) {
    const std::string row = bench::config_label(config);
    row_labels.push_back(row);
    for (const bench::Workload& w : workloads) {
      const bench::RunResult r =
          bench::run_build_repeated(w, config, cli.warmup, cli.repeat);
      grid[row][w.name] = Cell{r.elapsed_s, r.checksum, r.stats.to_json()};
      if (cli.csv) {
        std::printf("csv,fig07,%s,%s,%.3f\n", w.name.c_str(), row.c_str(),
                    r.elapsed_s);
      }
      std::fflush(stdout);
    }
  };

  if (cli.include_seq) measure(bench::config_for(cli, 1, /*sequential=*/true));
  for (const unsigned t : cli.thread_counts) {
    measure(bench::config_for(cli, t, /*sequential=*/false));
  }

  // Cross-configuration canonicity check (every run builds the same
  // functions, so the node-count checksums must agree).
  for (const bench::Workload& w : workloads) {
    const std::uint64_t expect = grid[row_labels.front()][w.name].checksum;
    for (const std::string& row : row_labels) {
      if (grid[row][w.name].checksum != expect) {
        std::fprintf(stderr, "CHECKSUM MISMATCH on %s row %s\n",
                     w.name.c_str(), row.c_str());
        return 1;
      }
    }
  }

  std::printf("\nFigure 7: Elapsed time (seconds) for building BDDs\n");
  {
    std::vector<std::string> header{"# Procs"};
    for (const bench::Workload& w : workloads) header.push_back(w.name);
    util::TextTable table(header);
    for (const std::string& row : row_labels) {
      std::vector<std::string> cells{row};
      for (const bench::Workload& w : workloads) {
        cells.push_back(util::TextTable::num(grid[row][w.name].elapsed, 2));
      }
      table.add_row(std::move(cells));
    }
    table.print(std::cout);
  }

  if (cli.include_seq) {
    std::printf("\nFigure 8: Speedup over the sequential running time\n");
    std::vector<std::string> header{"# Procs"};
    for (const bench::Workload& w : workloads) header.push_back(w.name);
    util::TextTable table(header);
    for (const std::string& row : row_labels) {
      if (row == "Seq") continue;
      std::vector<std::string> cells{row};
      for (const bench::Workload& w : workloads) {
        const double seq = grid["Seq"][w.name].elapsed;
        const double par = grid[row][w.name].elapsed;
        cells.push_back(util::TextTable::num(par > 0 ? seq / par : 0, 2));
      }
      table.add_row(std::move(cells));
    }
    table.print(std::cout);
    std::printf(
        "\nPaper reference (SGI Power Challenge, 8 procs): speedups of over\n"
        "two on four processors and up to four on eight processors.\n");
  }

  // Machine-readable dump for the CI benchmark artifact: one record per
  // (configuration row, circuit) cell, so regressions can be diffed across
  // commits without parsing the tables.
  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"fig07_08_elapsed\",\n"
        << "  \"warmup\": " << cli.warmup << ",\n"
        << "  \"repeat\": " << cli.repeat << ",\n"
        << "  \"hardware_concurrency\": "
        << std::max(1u, std::thread::hardware_concurrency()) << ",\n"
        << "  \"results\": [\n";
    bool first = true;
    for (const std::string& row : row_labels) {
      for (const bench::Workload& w : workloads) {
        const Cell& cell = grid[row][w.name];
        if (!first) out << ",\n";
        first = false;
        out << "    {\"config\": \"" << row << "\", \"circuit\": \""
            << w.name << "\", \"elapsed_s\": " << cell.elapsed
            << ", \"checksum\": " << cell.checksum
            << ", \"stats\": " << cell.stats_json << "}";
      }
    }
    out << "\n  ]\n}\n";
    std::printf("\nwrote %s\n", cli.json_path.c_str());
  }
  return 0;
}
