#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "circuit/bench_io.hpp"
#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/stats_metrics.hpp"
#include "util/timer.hpp"

namespace pbdd::bench {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, sep)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "error: %s\n"
               "flags: --circuits a,b,c  --threads 1,2,4,8  --no-seq\n"
               "       --threshold N  --group N  --cache-log2 N  --gc-min N\n"
               "       --discipline passlock|sharded|lockfree  --csv\n"
               "       --json PATH  --warmup N  --repeat N\n"
               "circuit specs: c2670s c2670b c3540s c17 mult-N alu-N cmp-N "
               "add-N par-N rand-N or a .bench file path\n",
               message.c_str());
  std::exit(2);
}

}  // namespace

Cli parse_cli(int argc, char** argv,
              std::vector<std::string> default_circuits) {
  Cli cli;
  cli.circuit_specs = std::move(default_circuits);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--circuits") {
      cli.circuit_specs = split(next(), ',');
    } else if (arg == "--threads") {
      cli.thread_counts.clear();
      for (const std::string& t : split(next(), ',')) {
        cli.thread_counts.push_back(
            static_cast<unsigned>(std::strtoul(t.c_str(), nullptr, 10)));
      }
    } else if (arg == "--no-seq") {
      cli.include_seq = false;
    } else if (arg == "--threshold") {
      cli.eval_threshold = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--group") {
      cli.group_size =
          static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--cache-log2") {
      cli.cache_log2 =
          static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--gc-min") {
      cli.gc_min_nodes = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--discipline") {
      const std::string d = next();
      if (d == "passlock") {
        cli.discipline = core::TableDiscipline::kPassLock;
      } else if (d == "sharded") {
        cli.discipline = core::TableDiscipline::kSharded;
      } else if (d == "lockfree") {
        cli.discipline = core::TableDiscipline::kLockFree;
      } else {
        usage_error("unknown discipline " + d);
      }
    } else if (arg == "--warmup") {
      cli.warmup =
          static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--repeat") {
      cli.repeat = std::max(
          1u, static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10)));
    } else if (arg == "--csv") {
      cli.csv = true;
    } else if (arg == "--json") {
      cli.json_path = next();
    } else {
      usage_error("unknown flag " + arg);
    }
  }
  if (cli.circuit_specs.empty()) usage_error("no circuits selected");
  if (cli.thread_counts.empty()) usage_error("no thread counts selected");
  return cli;
}

namespace {

unsigned suffix_number(const std::string& spec, const std::string& prefix) {
  return static_cast<unsigned>(
      std::strtoul(spec.substr(prefix.size()).c_str(), nullptr, 10));
}

circuit::Circuit make_circuit(const std::string& spec) {
  if (spec == "c2670s") return circuit::c2670_like();
  if (spec == "c2670b") return circuit::c2670_big();
  if (spec == "c3540s") return circuit::c3540_like();
  if (spec == "c17") return circuit::c17();
  if (spec.rfind("mult-", 0) == 0) {
    return circuit::multiplier(suffix_number(spec, "mult-"));
  }
  if (spec.rfind("alu-", 0) == 0) {
    return circuit::alu(suffix_number(spec, "alu-"));
  }
  if (spec.rfind("cmp-", 0) == 0) {
    return circuit::comparator(suffix_number(spec, "cmp-"));
  }
  if (spec.rfind("add-", 0) == 0) {
    return circuit::carry_select_adder(suffix_number(spec, "add-"));
  }
  if (spec.rfind("par-", 0) == 0) {
    return circuit::parity_tree(suffix_number(spec, "par-"));
  }
  if (spec.rfind("henc-", 0) == 0) {
    return circuit::hamming_encoder(suffix_number(spec, "henc-"));
  }
  if (spec.rfind("hdec-", 0) == 0) {
    return circuit::hamming_decoder(suffix_number(spec, "hdec-"));
  }
  if (spec.rfind("bshift-", 0) == 0) {
    return circuit::barrel_shifter(suffix_number(spec, "bshift-"));
  }
  if (spec.rfind("prienc-", 0) == 0) {
    return circuit::priority_encoder(suffix_number(spec, "prienc-"));
  }
  if (spec.rfind("rand-", 0) == 0) {
    const unsigned seed = suffix_number(spec, "rand-");
    return circuit::random_circuit(24, 600, seed);
  }
  if (spec.size() > 6 && spec.substr(spec.size() - 6) == ".bench") {
    return circuit::parse_bench_file(spec);
  }
  throw std::runtime_error("unknown circuit spec '" + spec + "'");
}

}  // namespace

Workload make_workload(const std::string& spec) {
  Workload w;
  const circuit::Circuit raw = make_circuit(spec);
  w.name = raw.name();
  w.binarized = raw.binarized();
  w.order = circuit::order_dfs(w.binarized);
  w.num_vars = static_cast<unsigned>(w.binarized.inputs().size());
  return w;
}

std::vector<Workload> make_workloads(const Cli& cli) {
  std::vector<Workload> result;
  result.reserve(cli.circuit_specs.size());
  for (const std::string& spec : cli.circuit_specs) {
    result.push_back(make_workload(spec));
  }
  return result;
}

core::Config config_for(const Cli& cli, unsigned workers, bool sequential) {
  core::Config config;
  config.workers = sequential ? 1 : workers;
  config.sequential_mode = sequential;
  config.eval_threshold = cli.eval_threshold;
  config.group_size = cli.group_size;
  config.cache_log2 = cli.cache_log2;
  config.gc_min_nodes = cli.gc_min_nodes;
  config.table_discipline = cli.discipline;
  // Benchmarks measure the algorithm, not the scheduler: never run more
  // ready workers than the machine has hardware threads. On a host with
  // fewer cores than the sweep's largest worker count, the extra workers
  // park (Config::max_active_workers) instead of convoying on the pass
  // locks, so oversized points degrade to parity rather than to thrash.
  config.max_active_workers = std::max(1u, std::thread::hardware_concurrency());
  return config;
}

RunResult run_build(const Workload& workload, const core::Config& config) {
  core::BddManager mgr(workload.num_vars, config);
  util::WallTimer timer;
  const std::vector<core::Bdd> outputs =
      circuit::build_parallel(mgr, workload.binarized, workload.order);
  RunResult result;
  result.elapsed_s = timer.elapsed_s();
  result.peak_mb = static_cast<double>(mgr.peak_bytes()) / (1024.0 * 1024.0);
  result.stats = mgr.stats();
  result.total_ops = result.stats.total.ops_performed;
  result.gc_runs = mgr.gc_runs();
  result.final_live_nodes = mgr.live_nodes();
  result.registry = std::make_shared<obs::Registry>();
  core::publish_stats(result.stats, *result.registry,
                      {.per_worker = true, .per_var = true});
  // Canonicity checksum: order-sensitive mix of per-output node counts.
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (const core::Bdd& out : outputs) {
    checksum = (checksum ^ mgr.node_count(out)) * 0x100000001b3ULL;
  }
  result.checksum = checksum;
  return result;
}

RunResult run_build_repeated(const Workload& workload,
                             const core::Config& config, unsigned warmup,
                             unsigned repeat) {
  for (unsigned i = 0; i < warmup; ++i) {
    (void)run_build(workload, config);
  }
  RunResult best = run_build(workload, config);
  for (unsigned i = 1; i < repeat; ++i) {
    RunResult r = run_build(workload, config);
    if (r.checksum != best.checksum) {
      throw std::runtime_error("run_build_repeated: checksum varies across "
                               "repeats on " + workload.name);
    }
    // Min-of-N: the least-disturbed run is the best estimate of the
    // algorithm's cost; the others measure the machine's noise.
    if (r.elapsed_s < best.elapsed_s) best = std::move(r);
  }
  return best;
}

std::string config_label(const core::Config& config) {
  return config.sequential_mode ? "Seq" : std::to_string(config.workers);
}

}  // namespace pbdd::bench
