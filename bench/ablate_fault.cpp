// Ablation: fault-simulation throughput (faults/sec) vs worker count.
//
// The stuck-at fault campaign (src/fault/) is the engine's best-shaped
// parallel workload: every fault's cone rebuild is independent of every
// other fault's, so a wave of faults is a stream of wide apply_batch calls
// with no cross-item dependencies — exactly the top-level-operation batches
// the paper's parallel construction is built around. This harness measures
// what that independence buys across worker counts.
//
// Protocol per worker count W: fresh W-worker manager, build the golden
// BDDs, run the full campaign (optionally --max-nets capped), best of
// kReps repetitions. The per-net verdicts are also cross-checked against
// the 1-worker run — a throughput harness that silently computed different
// answers would be worse than useless.
//
//   ablate_fault --circuits c2670b --threads 1,2,4 --json BENCH_fault.json
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/report.hpp"
#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv, {"c2670b"});
  const bench::Workload w = bench::make_workload(cli.circuit_specs[0]);
  const int kReps = static_cast<int>(std::max(2u, cli.repeat));

  // Campaign knobs: a generous wave width keeps every batch wide, and the
  // stride-sampled net cap keeps a full worker sweep on c2670s to minutes.
  // The sample is deterministic, so every point evaluates the same faults
  // and the per-net verdict cross-check below stays meaningful.
  fault::FaultSimOptions fopts;
  fopts.batch_faults = 64;
  fopts.max_nets = 48;

  struct Point {
    unsigned workers = 0;
    double campaign_s = 0, golden_s = 0;
    std::uint64_t faults = 0, detected = 0, batches = 0;
    /// Mean and min of the per-wave worker-utilization samples
    /// (CampaignStats::wave_utilization) from the fastest repetition.
    double util_mean = 0, util_min = 0;
    std::vector<double> wave_utilization;
  };
  std::vector<Point> points;
  std::string reference_report;  // 1st configuration's verdicts

  util::TextTable table({"# procs", "golden s", "campaign s", "faults",
                         "faults/s", "detected", "batches", "util", "speedup"});
  double base_campaign_s = 0.0;
  for (const unsigned workers : cli.thread_counts) {
    Point p;
    p.workers = workers;
    p.campaign_s = 1e99;
    std::string report;
    for (int rep = 0; rep < kReps; ++rep) {
      core::Config config = bench::config_for(cli, workers, false);
      core::BddManager mgr(w.num_vars, config);
      fault::FaultCampaign campaign(mgr, w.binarized, w.order);
      util::WallTimer tg;
      campaign.build_golden();
      const double golden_s = tg.elapsed_s();
      util::WallTimer tc;
      const std::vector<fault::NetFaultResult> results =
          campaign.run(fopts);
      const double campaign_s = tc.elapsed_s();
      if (campaign_s < p.campaign_s) {
        p.campaign_s = campaign_s;
        p.golden_s = golden_s;
        const fault::CampaignStats& s = campaign.stats();
        p.faults = s.faults_evaluated;
        p.detected = s.faults_detected;
        p.batches = s.batches;
        p.wave_utilization = s.wave_utilization;
        p.util_mean = 0;
        p.util_min = p.wave_utilization.empty() ? 0.0 : 1e99;
        for (const double u : p.wave_utilization) {
          p.util_mean += u;
          p.util_min = std::min(p.util_min, u);
        }
        if (!p.wave_utilization.empty()) {
          p.util_mean /= static_cast<double>(p.wave_utilization.size());
        }
      }
      if (rep == 0) {
        fault::ReportInfo info;
        info.circuit = w.name;
        info.inputs = w.binarized.inputs().size();
        info.outputs = w.binarized.outputs().size();
        info.gates = w.binarized.num_gates();
        info.total_nets = fault::enumerate_fault_sites(w.binarized).size();
        info.reported_nets = results.size();
        report = fault::render_report(info, results);
      }
    }
    if (reference_report.empty()) {
      reference_report = report;
    } else if (report != reference_report) {
      std::fprintf(stderr,
                   "FAIL: %u-worker verdicts differ from reference\n",
                   workers);
      return 1;
    }
    if (base_campaign_s == 0.0) base_campaign_s = p.campaign_s;
    points.push_back(p);

    table.add_row(
        {std::to_string(workers), util::TextTable::num(p.golden_s, 3),
         util::TextTable::num(p.campaign_s, 3), std::to_string(p.faults),
         util::TextTable::num(static_cast<double>(p.faults) / p.campaign_s,
                              0),
         std::to_string(p.detected), std::to_string(p.batches),
         util::TextTable::num(p.util_mean, 2),
         util::TextTable::num(base_campaign_s / p.campaign_s, 2)});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nEvery wave merges the per-level ops of %zu concurrent faults into\n"
      "one apply_batch, so batch width stays high for the whole campaign\n"
      "and faults/s should rise with workers.\n",
      fopts.batch_faults);

  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"ablate_fault\",\n"
        << "  \"circuit\": \"" << w.name << "\",\n"
        << "  \"batch_faults\": " << fopts.batch_faults << ",\n"
        << "  \"max_nets\": " << fopts.max_nets << ",\n"
        << "  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      out << (i ? ",\n    " : "\n    ") << "{\"workers\": " << p.workers
          << ", \"golden_s\": " << p.golden_s
          << ", \"campaign_s\": " << p.campaign_s
          << ", \"faults\": " << p.faults << ", \"faults_per_s\": "
          << static_cast<double>(p.faults) / p.campaign_s
          << ", \"detected\": " << p.detected
          << ", \"batches\": " << p.batches
          << ", \"utilization_mean\": " << p.util_mean
          << ", \"utilization_min\": " << p.util_min
          << ", \"wave_utilization\": [";
      for (std::size_t u = 0; u < p.wave_utilization.size(); ++u) {
        out << (u ? ", " : "") << p.wave_utilization[u];
      }
      out << "], \"speedup\": " << base_campaign_s / p.campaign_s << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("wrote %s\n", cli.json_path.c_str());
  }
  return 0;
}
