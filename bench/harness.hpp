// Shared infrastructure for the paper-figure benchmark harnesses.
//
// Every fig* binary reproduces one table/figure from Section 4 of the paper
// over the same four workloads (two ISCAS-class circuits and two generated
// multipliers). Default multiplier widths are reduced from the paper's
// 13/14 so a full figure regenerates in minutes on a laptop; pass
// "--circuits mult-13,mult-14" for paper scale, or point --circuits at real
// ISCAS85 .bench files.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "core/bdd_manager.hpp"
#include "core/config.hpp"
#include "obs/metrics.hpp"

namespace pbdd::bench {

struct Workload {
  std::string name;
  circuit::Circuit binarized;
  std::vector<unsigned> order;  ///< order_dfs variable assignment
  unsigned num_vars = 0;
};

struct Cli {
  std::vector<std::string> circuit_specs;  // names, mult-N, or .bench paths
  std::vector<unsigned> thread_counts{1, 2, 4, 8};
  bool include_seq = true;
  std::uint64_t eval_threshold = core::Config{}.eval_threshold;
  std::uint32_t group_size = core::Config{}.group_size;
  unsigned cache_log2 = core::Config{}.cache_log2;
  std::size_t gc_min_nodes = core::Config{}.gc_min_nodes;
  core::TableDiscipline discipline = core::Config{}.table_discipline;
  bool csv = false;
  std::string json_path;  ///< when set, fig binaries dump results as JSON
  unsigned warmup = 0;    ///< discarded runs before measuring
  unsigned repeat = 1;    ///< measured runs per point; min is reported
};

/// Parse the common flags:
///   --circuits a,b,c   workload list (default c2670s,c3540s,mult-10,mult-11)
///   --threads 1,2,4,8  parallel worker counts
///   --no-seq           skip the dedicated sequential configuration
///   --threshold N      evaluation threshold
///   --group N          steal-group size
///   --cache-log2 N     per-worker compute-cache size
///   --discipline D     unique-table locking: passlock, sharded, lockfree
///   --csv              machine-readable output in addition to tables
///   --json PATH        dump results as JSON (fig07_08_elapsed)
///   --warmup N         discarded runs per point before measuring
///   --repeat N         measured runs per point (the minimum is reported)
/// Unknown flags abort with a usage message.
Cli parse_cli(int argc, char** argv,
              std::vector<std::string> default_circuits = {
                  "c2670s", "c3540s", "mult-10", "mult-11"});

/// Resolve one circuit spec: "c2670s" / "c3540s" / "c17" / "mult-N" /
/// "alu-N" / "cmp-N" / "add-N" / a path ending in ".bench". The result is
/// binarized and paired with its order_dfs variable order.
Workload make_workload(const std::string& spec);

std::vector<Workload> make_workloads(const Cli& cli);

/// Engine configuration for one measurement point.
core::Config config_for(const Cli& cli, unsigned workers, bool sequential);

struct RunResult {
  double elapsed_s = 0;
  double peak_mb = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t gc_runs = 0;
  std::size_t final_live_nodes = 0;
  core::ManagerStats stats;
  /// Engine counters published as metric series (core::publish_stats with
  /// per-worker and per-variable detail). The figure harnesses read their
  /// phase/lock breakdowns from here rather than poking ManagerStats fields,
  /// exercising the same names an external scrape would see.
  std::shared_ptr<obs::Registry> registry;
  /// Checksum over output node counts: identical functions across
  /// configurations must produce identical checksums (canonicity), so every
  /// benchmark doubles as a correctness check.
  std::uint64_t checksum = 0;
};

/// Build all output BDDs of the workload under the given configuration and
/// collect the measurements the paper reports.
RunResult run_build(const Workload& workload, const core::Config& config);

/// run_build with `warmup` discarded runs followed by `repeat` measured
/// runs; returns the fastest measured run (min-of-N rejects scheduler and
/// cache noise, the standard protocol for shared machines). Throws if the
/// canonicity checksum varies across repeats.
RunResult run_build_repeated(const Workload& workload,
                             const core::Config& config, unsigned warmup,
                             unsigned repeat);

/// "Seq" or the worker count, formatted as the paper's row labels.
std::string config_label(const core::Config& config);

}  // namespace pbdd::bench
