// Ablation: checkpoint/restore throughput vs worker count.
//
// The snapshot format (docs/FORMAT.md) is level-ordered so the manager's own
// worker pool serializes and rebuilds per-variable sections in parallel —
// the same decomposition the paper uses for construction and GC. This
// harness measures what that buys: save and restore throughput (MB/s and
// nodes/s) across worker counts on a multi-million-node store.
//
// Protocol per worker count W: restore a reference snapshot under W workers
// (giving a W-worker manager holding the full store without rebuilding the
// circuit), then time (a) full-store save from that manager and (b) the
// ref-preserving restore of the file it wrote — the chain-adoption fast
// path, no per-node hashing. Best of 3 repetitions each.
//
//   ablate_snapshot --circuits mult-11 --threads 1,2,4 --json BENCH_snapshot.json
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/builder.hpp"
#include "harness.hpp"
#include "snapshot/snapshot.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv, {"mult-11"});
  const bench::Workload w = bench::make_workload(cli.circuit_specs[0]);
  constexpr int kReps = 3;

  // Build the store once, at the largest requested worker count.
  unsigned build_workers = 1;
  for (const unsigned t : cli.thread_counts) {
    build_workers = std::max(build_workers, t);
  }
  const std::string ref_path = "ablate_snapshot_ref.snap";
  std::uint64_t store_nodes = 0;
  std::uint64_t file_bytes = 0;
  {
    core::Config config = bench::config_for(cli, build_workers, false);
    core::BddManager mgr(w.num_vars, config);
    const std::vector<core::Bdd> outputs =
        circuit::build_parallel(mgr, w.binarized, w.order);
    std::vector<snapshot::NamedRoot> named;
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      named.push_back({w.binarized.output_names()[o], outputs[o]});
    }
    const snapshot::SaveStats s = snapshot::save(mgr, ref_path, named);
    store_nodes = s.nodes;
    file_bytes = s.bytes;
    std::printf("%s: %llu nodes in store, %.1f MB on disk\n", w.name.c_str(),
                static_cast<unsigned long long>(store_nodes),
                static_cast<double>(file_bytes) / 1048576.0);
  }
  const double file_mb = static_cast<double>(file_bytes) / 1048576.0;

  struct Point {
    unsigned workers;
    double save_s, restore_s;
    std::uint64_t levels_adopted, levels;
  };
  std::vector<Point> points;

  util::TextTable table({"# procs", "save s", "save MB/s", "save Mnodes/s",
                         "restore s", "restore MB/s", "restore Mnodes/s",
                         "adopted"});
  for (const unsigned workers : cli.thread_counts) {
    core::Config config = bench::config_for(cli, workers, false);
    snapshot::RestoreResult base = snapshot::restore(ref_path, config);

    Point p{workers, 1e99, 1e99, 0, 0};
    const std::string path =
        "ablate_snapshot_w" + std::to_string(workers) + ".snap";
    for (int rep = 0; rep < kReps; ++rep) {
      util::WallTimer t;
      snapshot::save(*base.manager, path, base.roots);
      p.save_s = std::min(p.save_s, t.elapsed_s());
    }
    for (int rep = 0; rep < kReps; ++rep) {
      util::WallTimer t;
      const snapshot::RestoreResult r = snapshot::restore(path, config);
      p.restore_s = std::min(p.restore_s, t.elapsed_s());
      p.levels_adopted = r.stats.levels_adopted;
      p.levels = r.stats.levels;
    }
    std::remove(path.c_str());
    points.push_back(p);

    const double nodes_m = static_cast<double>(store_nodes) * 1e-6;
    table.add_row(
        {std::to_string(workers), util::TextTable::num(p.save_s, 3),
         util::TextTable::num(file_mb / p.save_s, 1),
         util::TextTable::num(nodes_m / p.save_s, 2),
         util::TextTable::num(p.restore_s, 3),
         util::TextTable::num(file_mb / p.restore_s, 1),
         util::TextTable::num(nodes_m / p.restore_s, 2),
         std::to_string(p.levels_adopted) + "/" + std::to_string(p.levels)});
    std::fflush(stdout);
  }
  std::remove(ref_path.c_str());
  table.print(std::cout);
  std::printf(
      "\nSave writes every level section from the manager's own pool;\n"
      "restore rebuilds arenas and adopts the stored unique-table chains\n"
      "without hashing (ref-preserving path). Throughput should scale with\n"
      "workers until the file I/O path saturates.\n");

  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"ablate_snapshot\",\n"
        << "  \"circuit\": \"" << w.name << "\",\n"
        << "  \"store_nodes\": " << store_nodes << ",\n"
        << "  \"file_bytes\": " << file_bytes << ",\n"
        << "  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      const double nodes = static_cast<double>(store_nodes);
      out << (i ? ",\n    " : "\n    ") << "{\"workers\": " << p.workers
          << ", \"save\": {\"s\": " << p.save_s
          << ", \"mb_per_s\": " << file_mb / p.save_s
          << ", \"nodes_per_s\": " << nodes / p.save_s << "}"
          << ", \"restore\": {\"s\": " << p.restore_s
          << ", \"mb_per_s\": " << file_mb / p.restore_s
          << ", \"nodes_per_s\": " << nodes / p.restore_s
          << ", \"levels_adopted\": " << p.levels_adopted
          << ", \"levels\": " << p.levels << "}}";
    }
    out << "\n  ]\n}\n";
    std::printf("wrote %s\n", cli.json_path.c_str());
  }
  return 0;
}
