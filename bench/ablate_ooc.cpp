// Ablation: out-of-core paging cost vs resident-node budget.
//
// The pager (src/ooc/) exploits the breadth-first discipline — one level in
// flight at a time — to spill cold levels to disk at batch barriers and
// fault them back on first touch. This harness measures what that paging
// discipline costs: full construction under shrinking resident budgets,
// expressed as fractions of the unbudgeted build's final live-node count,
// across worker counts.
//
// Protocol per worker count W: build once unbudgeted (the baseline and the
// budget reference), then rebuild under each budget ratio with a LevelPager
// attached. Every run's canonicity checksum (FNV over per-output node
// counts) must equal the baseline's — a build that pages wrong fails here,
// not in a plot.
//
//   ablate_ooc --circuits mult-11 --threads 1,2,4 --json BENCH_ooc.json
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "circuit/builder.hpp"
#include "harness.hpp"
#include "ooc/level_pager.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Canonicity checksum over per-output node counts (the scaling suite's
/// idiom): identical functions must hash identically under every budget.
std::uint64_t outputs_checksum(pbdd::core::BddManager& mgr,
                               const std::vector<pbdd::core::Bdd>& outputs) {
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (const pbdd::core::Bdd& out : outputs) {
    checksum = (checksum ^ mgr.node_count(out)) * 0x100000001b3ULL;
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv, {"mult-11"});
  const bench::Workload w = bench::make_workload(cli.circuit_specs[0]);
  const std::vector<double> ratios{0.5, 0.25};

  const std::string spill_dir =
      "/tmp/pbdd_ablate_ooc_" + std::to_string(::getpid());
  ::mkdir(spill_dir.c_str(), 0755);

  struct Point {
    unsigned workers;
    double ratio;  ///< 1.0 = unbudgeted baseline (no pager)
    std::size_t budget;
    double elapsed_s;
    ooc::PagerStats pager;
    std::uint64_t checksum;
  };
  std::vector<Point> points;
  bool checksums_ok = true;

  util::TextTable table({"# procs", "budget", "elapsed s", "slowdown",
                         "demotions", "faults", "pf hits", "MB written",
                         "MB read"});
  for (const unsigned workers : cli.thread_counts) {
    std::size_t baseline_live = 0;
    std::uint64_t baseline_checksum = 0;
    double baseline_s = 0;
    for (std::size_t ri = 0; ri <= ratios.size(); ++ri) {
      const bool budgeted = ri > 0;
      const double ratio = budgeted ? ratios[ri - 1] : 1.0;
      const core::Config config = bench::config_for(cli, workers, false);
      core::BddManager mgr(w.num_vars, config);
      std::unique_ptr<ooc::LevelPager> pager;
      std::size_t budget = 0;
      if (budgeted) {
        budget = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(baseline_live) *
                                        ratio));
        ooc::PagerConfig pc;
        pc.spill_dir = spill_dir;
        pc.node_budget = budget;
        pager = std::make_unique<ooc::LevelPager>(mgr, pc);
      }

      util::WallTimer t;
      const std::vector<core::Bdd> outputs =
          circuit::build_parallel(mgr, w.binarized, w.order);
      const double elapsed = t.elapsed_s();

      Point p{workers, ratio, budget, elapsed, {}, 0};
      // node_count faults every spilled level back in; counted outside the
      // timed build, as a consumer of the finished store would.
      p.checksum = outputs_checksum(mgr, outputs);
      if (pager) {
        p.pager = pager->stats();
        if (p.checksum != baseline_checksum) {
          checksums_ok = false;
          std::fprintf(stderr,
                       "CHECKSUM MISMATCH: w=%u ratio=%.2f %016llx != "
                       "baseline %016llx\n",
                       workers, ratio,
                       static_cast<unsigned long long>(p.checksum),
                       static_cast<unsigned long long>(baseline_checksum));
        }
      } else {
        baseline_live = mgr.live_nodes();
        baseline_checksum = p.checksum;
        baseline_s = elapsed;
      }
      points.push_back(p);

      table.add_row(
          {std::to_string(workers),
           budgeted ? util::TextTable::num(ratio, 2) : "none",
           util::TextTable::num(elapsed, 3),
           util::TextTable::num(elapsed / baseline_s, 2),
           std::to_string(p.pager.demotions), std::to_string(p.pager.faults),
           std::to_string(p.pager.prefetch_hits),
           util::TextTable::num(
               static_cast<double>(p.pager.bytes_written) / 1048576.0, 1),
           util::TextTable::num(
               static_cast<double>(p.pager.bytes_read) / 1048576.0, 1)});
      std::fflush(stdout);
    }
  }
  ::rmdir(spill_dir.c_str());
  table.print(std::cout);
  std::printf(
      "\nBudgets are fractions of the unbudgeted build's final live nodes.\n"
      "Every budgeted build's output checksum is enforced against the\n"
      "baseline's; the slowdown column is the price of paging, the\n"
      "prefetch-hit column how much of it the sequential reader hides.\n");

  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"ablate_ooc\",\n"
        << "  \"circuit\": \"" << w.name << "\",\n"
        << "  \"checksums_ok\": " << (checksums_ok ? "true" : "false")
        << ",\n  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      out << (i ? ",\n    " : "\n    ") << "{\"workers\": " << p.workers
          << ", \"budget_ratio\": " << p.ratio
          << ", \"budget_nodes\": " << p.budget << ", \"s\": " << p.elapsed_s
          << ", \"demotions\": " << p.pager.demotions
          << ", \"faults\": " << p.pager.faults
          << ", \"prefetch_hits\": " << p.pager.prefetch_hits
          << ", \"bytes_written\": " << p.pager.bytes_written
          << ", \"bytes_read\": " << p.pager.bytes_read << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("wrote %s\n", cli.json_path.c_str());
  }
  return checksums_ok ? 0 : 1;
}
