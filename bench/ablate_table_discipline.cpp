// Ablation: the three unique-table locking disciplines head to head.
//
// Figs. 16/17 of the paper expose the reduction phase serializing on the
// per-variable locks; Section 6 asks for "a better distributed hashing
// algorithm". ablate_table_sharding measures the mutex-striped half-step;
// this harness adds the end point — the lock-free CAS table — and reports
// the quantity the disciplines actually compete on: reduction throughput
// (operations retired per second of reduction-phase time, summed over
// workers).
//
//   passlock  — one mutex per variable, held across a reduction pass
//   sharded   — 16 mutex-striped segments per variable
//   lockfree  — atomic bucket heads, CAS publication, no mutex at all
//
// Contention shows up as `lock wait (s)` for the mutex disciplines and as
// `cas retries` for the lock-free one. On a single hardware core the wall
// clock cannot show the parallel win (threads time-slice); the wait/retry
// columns still separate the disciplines, and on real cores the removed
// waits become reduction-phase speedup.
#include <cstdio>
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  bench::Cli cli = bench::parse_cli(argc, argv, {"mult-10"});
  if (cli.thread_counts == std::vector<unsigned>{1, 2, 4, 8}) {
    cli.thread_counts = {1, 2, 4, 8};
  }
  const bench::Workload w = bench::make_workload(cli.circuit_specs[0]);

  struct Row {
    const char* name;
    core::TableDiscipline discipline;
    unsigned shards;
  };
  const Row rows[] = {
      {"passlock", core::TableDiscipline::kPassLock, 1},
      {"sharded16", core::TableDiscipline::kSharded, 16},
      {"lockfree", core::TableDiscipline::kLockFree, 1},
  };

  std::printf("Unique-table locking-discipline ablation on %s\n",
              w.name.c_str());
  util::TextTable table({"# procs", "discipline", "elapsed s", "reduction s",
                         "lock wait s", "cas retries", "red. Mops/s"});
  double passlock_mops = 0;  // per worker count, for the relative column
  for (const unsigned workers : cli.thread_counts) {
    for (const Row& row : rows) {
      core::Config config = bench::config_for(cli, workers, false);
      config.table_discipline = row.discipline;
      config.table_shards = row.shards;
      const bench::RunResult r = bench::run_build(w, config);
      const double wait = util::ns_to_s(r.stats.total.lock_wait_ns);
      double reduction = 0;
      for (const auto& ws : r.stats.per_worker) {
        reduction += util::ns_to_s(ws.reduction_ns);
      }
      // Throughput over the phase the disciplines contend in: every retired
      // operation passes through exactly one find_or_insert-or-forward in
      // the reduction phase.
      const double mops =
          reduction > 0
              ? static_cast<double>(r.total_ops) / reduction * 1e-6
              : 0;
      if (row.discipline == core::TableDiscipline::kPassLock) {
        passlock_mops = mops;
      }
      table.add_row({std::to_string(workers), row.name,
                     util::TextTable::num(r.elapsed_s, 3),
                     util::TextTable::num(reduction, 3),
                     util::TextTable::num(wait, 3),
                     std::to_string(r.stats.total.cas_retries),
                     util::TextTable::num(mops, 2) +
                         (passlock_mops > 0
                              ? " (" +
                                    util::TextTable::num(
                                        mops / passlock_mops, 2) +
                                    "x)"
                              : "")});
      if (cli.csv) {
        std::printf("csv,ablate_discipline,%s,%u,%s,%.4f,%.4f,%.4f,%llu\n",
                    w.name.c_str(), workers, row.name, r.elapsed_s,
                    reduction, wait,
                    static_cast<unsigned long long>(
                        r.stats.total.cas_retries));
      }
      std::fflush(stdout);
    }
  }
  table.print(std::cout);
  std::printf(
      "\npasslock is the paper's discipline (Figs. 16/17 contention);\n"
      "sharded16 is the Section 6 striped half-step; lockfree removes the\n"
      "mutex entirely. The Mops/s column is reduction-phase throughput with\n"
      "the per-worker-count passlock baseline in parentheses.\n");
  return 0;
}
