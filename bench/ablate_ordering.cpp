// Ablation: variable ordering (Section 2 of the paper: "BDD size can be
// very sensitive to the variable ordering ... exponentially more compact").
//
// Compares, per workload: the SIS order_dfs ordering the paper uses, the
// naive declaration order, and (on the depth-first package) what Rudell
// sifting recovers starting from the naive order.
#include <cstdio>
#include <iostream>

#include "circuit/builder.hpp"
#include "circuit/ordering.hpp"
#include "df/df_manager.hpp"
#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli =
      bench::parse_cli(argc, argv, {"add-12", "cmp-12", "mult-6"});

  for (const std::string& spec : cli.circuit_specs) {
    const bench::Workload w = bench::make_workload(spec);
    const std::vector<unsigned> natural =
        circuit::order_natural(w.binarized);

    std::printf("\nOrdering ablation on %s\n", w.name.c_str());
    util::TextTable table({"ordering", "summed output nodes", "elapsed s"});

    auto core_row = [&](const char* label,
                        const std::vector<unsigned>& order) {
      core::BddManager mgr(w.num_vars);
      util::WallTimer timer;
      const auto outputs =
          circuit::build_parallel(mgr, w.binarized, order);
      std::size_t nodes = 0;
      for (const auto& o : outputs) nodes += mgr.node_count(o);
      table.add_row({label, std::to_string(nodes),
                     util::TextTable::num(timer.elapsed_s(), 3)});
    };
    core_row("order_dfs (SIS)", w.order);
    core_row("natural", natural);

    {
      // Sifting rescue starting from the naive order (depth-first package:
      // the engine with in-place reordering).
      df::DfManager mgr(w.num_vars);
      util::WallTimer timer;
      const auto outputs =
          circuit::build_sequential<df::DfManager, df::DfBdd>(
              mgr, w.binarized, natural);
      df::SiftOptions options;
      options.max_passes = 4;
      mgr.reorder_sift(options);
      std::size_t nodes = 0;
      for (const auto& o : outputs) nodes += mgr.node_count(o);
      table.add_row({"natural + sifting (df)", std::to_string(nodes),
                     util::TextTable::num(timer.elapsed_s(), 3)});
    }
    table.print(std::cout);
  }
  std::printf(
      "\nExpected: order_dfs beats the naive order (dramatically on the\n"
      "adder/comparator, whose good orders interleave operands); sifting\n"
      "recovers most of the gap without structural knowledge.\n");
  return 0;
}
