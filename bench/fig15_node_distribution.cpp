// Reproduces Figure 15 of the paper: the maximum number of BDD nodes in each
// variable's unique table during a one-processor build of the multiplier.
//
// This is the paper's central diagnostic: BDD nodes concentrate on a handful
// of variables (variables 6-8 held the bulk of mult-14's 7M-node peak),
// which is why the per-variable reduction locks and the rehash phase become
// the scaling bottleneck.
#include <cstdio>
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv, {"mult-11"});
  const bench::Workload workload = bench::make_workload(cli.circuit_specs[0]);

  const core::Config config = bench::config_for(cli, 1, false);
  const bench::RunResult r = bench::run_build(workload, config);
  const std::vector<std::size_t>& max_nodes = r.stats.max_nodes_per_var;

  std::printf("\nFigure 15: maximum number of BDD nodes per variable "
              "(%s, one processor)\n", workload.name.c_str());
  util::TextTable table({"variable", "max nodes", "bar"});
  std::size_t peak = 1;
  for (const std::size_t c : max_nodes) peak = std::max(peak, c);
  for (unsigned v = 0; v < max_nodes.size(); ++v) {
    const int width = static_cast<int>(50.0 * static_cast<double>(max_nodes[v]) /
                                       static_cast<double>(peak));
    table.add_row({std::to_string(v), std::to_string(max_nodes[v]),
                   std::string(static_cast<std::size_t>(width), '#')});
    if (cli.csv) {
      std::printf("csv,fig15,%s,%u,%zu\n", workload.name.c_str(), v,
                  max_nodes[v]);
    }
  }
  table.print(std::cout);

  // Concentration metric: fraction of the total held by the top 3 variables.
  std::vector<std::size_t> sorted = max_nodes;
  std::sort(sorted.rbegin(), sorted.rend());
  std::size_t total = 0, top3 = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    if (i < 3) top3 += sorted[i];
  }
  std::printf(
      "\nTop-3 variables hold %.1f%% of the summed per-variable peaks.\n"
      "Expected shape (paper): the majority of BDD nodes concentrate on a\n"
      "very small number of variables.\n",
      total ? 100.0 * static_cast<double>(top3) / static_cast<double>(total)
            : 0.0);
  return 0;
}
