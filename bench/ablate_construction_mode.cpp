// Ablation: construction strategy (Sections 2.2/2.3 and 5).
//
// Compares, sequentially, on the same workloads:
//   * depth-first recursion (the Brace–Rudell–Bryant baseline, Fig. 3),
//   * pure breadth-first (evalThreshold = infinity — the Ochi/Ranjan
//     style algorithm, maximum operator-node footprint),
//   * partial breadth-first (the paper's algorithm, bounded working set).
// Reports time, Shannon operations, and peak memory. The paper's hybrid
// predecessor [Chen-Yang-Bryant 97] showed the bounded-BF family matches or
// beats both classic approaches; the partial-BF engine keeps that while
// adding parallelism.
#include <cstdio>
#include <iostream>

#include "circuit/builder.hpp"
#include "df/df_manager.hpp"
#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli =
      bench::parse_cli(argc, argv, {"c2670s", "c3540s", "mult-10"});

  for (const bench::Workload& w : bench::make_workloads(cli)) {
    std::printf("\nConstruction-mode ablation on %s\n", w.name.c_str());
    util::TextTable table(
        {"mode", "elapsed s", "ops (M)", "peak MB", "final nodes"});

    {
      df::DfManager mgr(w.num_vars);
      util::WallTimer timer;
      const auto outputs =
          circuit::build_sequential<df::DfManager, df::DfBdd>(
              mgr, w.binarized, w.order);
      table.add_row(
          {"depth-first", util::TextTable::num(timer.elapsed_s(), 3),
           util::TextTable::num(
               static_cast<double>(mgr.stats().ops_performed) / 1e6, 2),
           util::TextTable::num(
               static_cast<double>(mgr.bytes()) / 1048576.0, 1),
           std::to_string(mgr.live_nodes())});
    }
    struct Mode {
      const char* name;
      std::uint64_t threshold;
      core::OverflowPolicy overflow;
    };
    const Mode modes[] = {
        {"pure breadth-first", core::Config::kUnbounded,
         core::OverflowPolicy::kContextStack},
        {"hybrid BF->DF [CYB97]", 1u << 13,
         core::OverflowPolicy::kDepthFirst},
        {"partial breadth-first", 1u << 13,
         core::OverflowPolicy::kContextStack},
    };
    for (const Mode& mode : modes) {
      core::Config config = bench::config_for(cli, 1, true);
      config.eval_threshold = mode.threshold;
      config.overflow = mode.overflow;
      core::BddManager mgr(w.num_vars, config);
      util::WallTimer timer;
      const auto outputs =
          circuit::build_parallel(mgr, w.binarized, w.order);
      table.add_row(
          {mode.name, util::TextTable::num(timer.elapsed_s(), 3),
           util::TextTable::num(
               static_cast<double>(mgr.stats().total.ops_performed) / 1e6,
               2),
           util::TextTable::num(
               static_cast<double>(mgr.peak_bytes()) / 1048576.0, 1),
           std::to_string(mgr.live_nodes())});
    }
    table.print(std::cout);
  }
  return 0;
}
