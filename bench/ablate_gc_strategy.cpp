// Ablation: garbage collection strategy (Section 3.4).
//
// The paper replaces the classic reference-count/free-list collector with
// mark-and-sweep plus memory compaction, reporting that on a workload over
// 3x physical memory the compacting collector halved total running time,
// while costing little on small cases. We can't overcommit memory here, but
// the structural comparison stands: build the same circuit with
//   (a) the depth-first package (refcount + free list, scattered reuse) and
//   (b) the core engine (mark-compact, contiguous arenas),
// under matched GC pressure, and report time, collections, and reclaim.
#include <cstdio>
#include <iostream>

#include "circuit/builder.hpp"
#include "df/df_manager.hpp"
#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv, {"mult-9"});
  const bench::Workload w = bench::make_workload(cli.circuit_specs[0]);

  std::printf("GC strategy ablation on %s (sequential builds)\n",
              w.name.c_str());
  util::TextTable table({"collector", "elapsed s", "collections",
                         "final nodes", "MB"});

  {
    // (a) Depth-first package: refcount + free list.
    df::DfConfig config;
    config.auto_gc = true;
    config.auto_gc_dead_fraction = 0.002;  // dead ROOTS only (children
                                           // cascade at sweep), so tiny
    df::DfManager mgr(w.num_vars, config);
    util::WallTimer timer;
    const auto outputs = circuit::build_sequential<df::DfManager, df::DfBdd>(
        mgr, w.binarized, w.order);
    table.add_row({"refcount+freelist (df)",
                   util::TextTable::num(timer.elapsed_s(), 3),
                   std::to_string(mgr.stats().gc_runs),
                   std::to_string(mgr.live_nodes()),
                   util::TextTable::num(
                       static_cast<double>(mgr.bytes()) / 1048576.0, 1)});
  }
  {
    // (b) Core engine: parallel-capable mark-compact, run single-threaded
    // for an apples-to-apples comparison.
    core::Config config = bench::config_for(cli, 1, true);
    config.gc_min_nodes = 1u << 16;
    config.gc_growth_factor = 1.5;
    core::BddManager mgr(w.num_vars, config);
    util::WallTimer timer;
    const auto outputs =
        circuit::build_parallel(mgr, w.binarized, w.order);
    table.add_row({"mark-compact (core)",
                   util::TextTable::num(timer.elapsed_s(), 3),
                   std::to_string(mgr.gc_runs()),
                   std::to_string(mgr.live_nodes()),
                   util::TextTable::num(
                       static_cast<double>(mgr.bytes()) / 1048576.0, 1)});
  }
  table.print(std::cout);
  std::printf(
      "\nThe paper's claim needs memory pressure beyond this harness (3x\n"
      "physical memory): there the free list's scattered node reuse caused\n"
      "2x slowdowns from paging, while compaction kept arenas dense. Here\n"
      "the visible effect is the collectors' direct cost plus locality of\n"
      "the compacted arenas.\n");
  return 0;
}
