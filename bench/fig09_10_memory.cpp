// Reproduces Figure 9 (memory usage in MBytes per circuit and processor
// count) and Figure 10 (the same data plotted against processors) of the
// paper. Peak bytes are sampled at batch barriers and cover node arenas,
// operator arenas, unique-table buckets, and the per-worker compute caches —
// the per-processor data structures whose duplication the paper measures
// ("using per-processor data structures increases the total memory usage by
// up to roughly 100% for the eight processor case").
#include <cstdio>
#include <iostream>
#include <map>

#include "harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  const std::vector<bench::Workload> workloads = bench::make_workloads(cli);

  std::map<std::string, std::map<std::string, double>> grid;
  std::vector<std::string> row_labels;

  auto measure = [&](const core::Config& config) {
    const std::string row = bench::config_label(config);
    row_labels.push_back(row);
    for (const bench::Workload& w : workloads) {
      const bench::RunResult r = bench::run_build(w, config);
      grid[row][w.name] = r.peak_mb;
      if (cli.csv) {
        std::printf("csv,fig09,%s,%s,%.2f\n", w.name.c_str(), row.c_str(),
                    r.peak_mb);
      }
      std::fflush(stdout);
    }
  };

  if (cli.include_seq) measure(bench::config_for(cli, 1, true));
  for (const unsigned t : cli.thread_counts) {
    measure(bench::config_for(cli, t, false));
  }

  std::printf("\nFigure 9: Memory usage in MBytes\n");
  std::vector<std::string> header{"# Procs"};
  for (const bench::Workload& w : workloads) header.push_back(w.name);
  util::TextTable table(header);
  for (const std::string& row : row_labels) {
    std::vector<std::string> cells{row};
    for (const bench::Workload& w : workloads) {
      cells.push_back(util::TextTable::num(grid[row][w.name], 1));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::printf(
      "\nFigure 10 (series for plotting): memory vs processors per circuit.\n"
      "Expected shape (paper): up to ~2x total memory at 8 processors from\n"
      "per-processor node managers and compute caches; on a DSM with 8x the\n"
      "memory this still pools to an effective 4x single-node capacity.\n");
  for (const bench::Workload& w : workloads) {
    std::printf("  %-10s:", w.name.c_str());
    for (const std::string& row : row_labels) {
      std::printf(" %s=%.1f", row.c_str(), grid[row][w.name]);
    }
    std::printf("\n");
  }
  return 0;
}
