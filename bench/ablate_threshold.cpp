// Ablation: the evaluation threshold (Section 3.1).
//
// The partial breadth-first algorithm's whole point is bounding the working
// set: evalThreshold = infinity degenerates to pure breadth-first expansion
// (maximum memory overhead), tiny thresholds degenerate toward depth-first
// behaviour (poor structured access, heavy context churn). This sweep shows
// elapsed time, peak memory, operator-arena footprint, and context-stack
// activity across thresholds on one workload.
#include <cstdio>
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv, {"mult-10"});
  const bench::Workload workload = bench::make_workload(cli.circuit_specs[0]);

  const std::uint64_t thresholds[] = {
      1u << 6, 1u << 9, 1u << 12, 1u << 15, 1u << 18,
      core::Config::kUnbounded};

  std::printf("Threshold ablation on %s (%u threads)\n",
              workload.name.c_str(), cli.thread_counts.back());
  util::TextTable table({"threshold", "elapsed s", "peak MB", "ops (M)",
                         "ctx pushed", "groups", "stolen"});
  for (const std::uint64_t threshold : thresholds) {
    core::Config config =
        bench::config_for(cli, cli.thread_counts.back(), false);
    config.eval_threshold = threshold;
    const bench::RunResult r = bench::run_build(workload, config);
    table.add_row(
        {threshold == core::Config::kUnbounded ? "inf (pure BF)"
                                               : std::to_string(threshold),
         util::TextTable::num(r.elapsed_s, 3),
         util::TextTable::num(r.peak_mb, 1),
         util::TextTable::num(static_cast<double>(r.total_ops) / 1e6, 2),
         std::to_string(r.stats.total.contexts_pushed),
         std::to_string(r.stats.total.groups_created),
         std::to_string(r.stats.total.groups_stolen)});
    if (cli.csv) {
      std::printf("csv,ablate_threshold,%s,%llu,%.3f,%.1f,%llu\n",
                  workload.name.c_str(),
                  static_cast<unsigned long long>(threshold), r.elapsed_s,
                  r.peak_mb, static_cast<unsigned long long>(r.total_ops));
    }
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nExpected: pure BF maximizes operator-node footprint; small\n"
      "thresholds bound memory at the cost of context churn and duplicate\n"
      "expansions (cross-context cache misses). The paper sets the\n"
      "threshold to a small fraction of physical memory.\n");
  return 0;
}
