// Reproduces Figure 11 (total number of Shannon-expansion operations in
// millions, per circuit and processor count) and Figure 12 (the same data
// plotted) of the paper.
//
// The interesting property: compute caches are per-worker and not shared, so
// adding workers duplicates some work — but the total operation count should
// grow only mildly with the number of processors (the paper's Fig. 11 shows
// e.g. 245M -> 305M from Seq to 8 processors on mult-14).
#include <cstdio>
#include <iostream>
#include <map>

#include "harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  const std::vector<bench::Workload> workloads = bench::make_workloads(cli);

  std::map<std::string, std::map<std::string, std::uint64_t>> ops;
  std::map<std::string, std::map<std::string, std::uint64_t>> dup;
  std::vector<std::string> row_labels;

  auto measure = [&](const core::Config& config) {
    const std::string row = bench::config_label(config);
    row_labels.push_back(row);
    for (const bench::Workload& w : workloads) {
      const bench::RunResult r = bench::run_build(w, config);
      ops[row][w.name] = r.total_ops;
      dup[row][w.name] = r.stats.total.cache_cross_ctx_misses;
      if (cli.csv) {
        std::printf("csv,fig11,%s,%s,%llu\n", w.name.c_str(), row.c_str(),
                    static_cast<unsigned long long>(r.total_ops));
      }
      std::fflush(stdout);
    }
  };

  if (cli.include_seq) measure(bench::config_for(cli, 1, true));
  for (const unsigned t : cli.thread_counts) {
    measure(bench::config_for(cli, t, false));
  }

  std::printf("\nFigure 11: Total number of operations (millions)\n");
  std::vector<std::string> header{"# Procs"};
  for (const bench::Workload& w : workloads) header.push_back(w.name);
  util::TextTable table(header);
  for (const std::string& row : row_labels) {
    std::vector<std::string> cells{row};
    for (const bench::Workload& w : workloads) {
      cells.push_back(
          util::TextTable::num(static_cast<double>(ops[row][w.name]) / 1e6, 2));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::printf(
      "\nFigure 12 (series for plotting) plus the duplication mechanism:\n"
      "cross-context cache misses (re-expansions an uncomputed shared cache\n"
      "would have avoided), in millions:\n");
  util::TextTable dup_table(header);
  for (const std::string& row : row_labels) {
    std::vector<std::string> cells{row};
    for (const bench::Workload& w : workloads) {
      cells.push_back(
          util::TextTable::num(static_cast<double>(dup[row][w.name]) / 1e6, 3));
    }
    dup_table.add_row(std::move(cells));
  }
  dup_table.print(std::cout);
  std::printf(
      "\nExpected shape (paper): operation counts stay nearly flat as\n"
      "processors are added despite unshared compute caches.\n");
  return 0;
}
