// Ablation: steal-group granularity (Section 3.3).
//
// When a context is pushed, its remaining unexpanded operations are
// "partitioned into small groups" — the steal unit. Tiny groups balance
// load finely but cost lock traffic and duplicated expansion contexts;
// huge groups approximate static partitioning.
#include <cstdio>
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  bench::Cli cli = bench::parse_cli(argc, argv, {"mult-10"});
  const bench::Workload workload = bench::make_workload(cli.circuit_specs[0]);
  const unsigned workers = cli.thread_counts.back();

  std::printf("Group-size ablation on %s (%u threads, threshold %llu)\n",
              workload.name.c_str(), workers,
              static_cast<unsigned long long>(cli.eval_threshold));
  util::TextTable table({"group size", "elapsed s", "ops (M)", "groups",
                         "taken", "stolen", "tasks stolen", "stalls"});
  for (const std::uint32_t group : {1u, 8u, 64u, 512u, 4096u}) {
    core::Config config = bench::config_for(cli, workers, false);
    config.group_size = group;
    // Pin the fixed size under test: the adaptive policy would override it.
    config.adaptive_group_size = false;
    // A modest threshold so spills (and therefore groups) actually happen.
    if (config.eval_threshold == core::Config{}.eval_threshold) {
      config.eval_threshold = 1u << 12;
    }
    const bench::RunResult r = bench::run_build(workload, config);
    table.add_row({std::to_string(group),
                   util::TextTable::num(r.elapsed_s, 3),
                   util::TextTable::num(
                       static_cast<double>(r.total_ops) / 1e6, 2),
                   std::to_string(r.stats.total.groups_created),
                   std::to_string(r.stats.total.groups_taken),
                   std::to_string(r.stats.total.groups_stolen),
                   std::to_string(r.stats.total.tasks_stolen),
                   std::to_string(r.stats.total.reduction_stalls)});
    if (cli.csv) {
      std::printf("csv,ablate_group,%s,%u,%.3f\n", workload.name.c_str(),
                  group, r.elapsed_s);
    }
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
