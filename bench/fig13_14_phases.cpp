// Reproduces Figure 13 (elapsed time of the mult-14 circuit for the
// expansion, reduction, and garbage collection phases on the first
// processor) and Figure 14 (speedups of each phase over the one-processor
// run) of the paper.
//
// Default workload is a reduced multiplier (mult-11); pass
// "--circuits mult-14" for paper scale. The GC threshold defaults low here
// so collections actually occur at this scale (the paper's runs collected
// naturally at 100s-of-MB heaps).
#include <cstdio>
#include <iostream>
#include <map>

#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  bench::Cli cli = bench::parse_cli(argc, argv, {"mult-11"});
  if (cli.gc_min_nodes == core::Config{}.gc_min_nodes) {
    cli.gc_min_nodes = 1u << 18;
  }
  const bench::Workload workload = bench::make_workload(cli.circuit_specs[0]);

  struct Phases {
    double expansion = 0, reduction = 0, gc = 0;
  };
  std::map<unsigned, Phases> grid;

  for (const unsigned t : cli.thread_counts) {
    const core::Config config = bench::config_for(cli, t, false);
    const bench::RunResult r = bench::run_build(workload, config);
    // "These numbers are measurements of the first processor's work load."
    // Read the published pbdd_engine_phase_ns_total{phase,worker="0"} series
    // rather than ManagerStats fields, so the figure exercises the same
    // names docs/OBSERVABILITY.md documents for scrapes.
    auto phase_s = [&](const char* phase) {
      return util::ns_to_s(r.registry->counter_value(
          "pbdd_engine_phase_ns_total", {{"phase", phase}, {"worker", "0"}}));
    };
    grid[t] = Phases{phase_s("expansion"), phase_s("reduction"),
                     phase_s("gc")};
    if (cli.csv) {
      std::printf("csv,fig13,%s,%u,%.4f,%.4f,%.4f\n", workload.name.c_str(),
                  t, grid[t].expansion, grid[t].reduction, grid[t].gc);
    }
    std::fflush(stdout);
  }

  std::printf("\nFigure 13: %s phase breakdown on the first processor "
              "(seconds)\n", workload.name.c_str());
  util::TextTable table({"# Procs", "Expansion", "Reduction", "GC"});
  for (const unsigned t : cli.thread_counts) {
    table.add_row({std::to_string(t),
                   util::TextTable::num(grid[t].expansion, 2),
                   util::TextTable::num(grid[t].reduction, 2),
                   util::TextTable::num(grid[t].gc, 2)});
  }
  table.print(std::cout);

  const unsigned base = cli.thread_counts.front();
  std::printf("\nFigure 14: speedups of each phase over the %u-processor "
              "run\n", base);
  util::TextTable sp({"# Procs", "Expansion", "Reduction", "GC"});
  for (const unsigned t : cli.thread_counts) {
    auto ratio = [&](double b, double v) {
      return util::TextTable::num(v > 0 ? b / v : 0, 2);
    };
    sp.add_row({std::to_string(t),
                ratio(grid[base].expansion, grid[t].expansion),
                ratio(grid[base].reduction, grid[t].reduction),
                ratio(grid[base].gc, grid[t].gc)});
  }
  sp.print(std::cout);
  std::printf(
      "\nExpected shape (paper, mult-14): expansion scales nicely (~6x at 8\n"
      "procs), reduction and GC scale well to 2 procs then poorly; for one\n"
      "processor expansion is >50%% of runtime, reduction ~40%%, GC ~10%%.\n"
      "Per-phase times here are the first worker's, so on one processor\n"
      "their sum approximates total elapsed time.\n");
  return 0;
}
