#!/usr/bin/env python3
"""CI gate on the parallel speedup of the BDD construction benchmark.

Reads the fig07_08_elapsed JSON artifact and fails (exit 1) unless the
N-worker configuration beats the dedicated sequential build on at least
--min-pass large circuits, with byte-identical canonicity checksums across
every configuration. "Large" filters out toy circuits whose runtimes are
all scheduling noise: a circuit qualifies when its sequential build takes
at least --min-large-seconds.

The pass bar is scale-aware. Speedup over Seq needs real cores: the
recorded hardware_concurrency decides whether the artifact was produced on
a machine that can exhibit parallel speedup at all.

  effective cores >= 2  ->  speedup must exceed --threshold   (default 1.0)
  single core           ->  speedup must exceed --parity      (default 0.9)

On a single-core host the sweep still runs, but 4 workers time-slice one
core, so the gate only insists the scheduling machinery stays within 10%
of the sequential build (parity) — a regression in barrier or steal cost
shows up as a parity failure long before multicore numbers move.

Always writes a scaling-curve artifact (--out): per circuit, the elapsed
time and speedup of every configuration row, plus the gate's verdict —
the file CI uploads so scaling can be diffed across commits.

Usage:
  speedup_gate.py --input bench/BENCH_elapsed.json \
                  --out bench/BENCH_scaling.json [--workers 4] \
                  [--threshold 1.0] [--parity 0.9] \
                  [--min-large-seconds 0.5] [--min-pass 2]
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--input", required=True, help="BENCH_elapsed.json path")
    ap.add_argument("--out", required=True, help="scaling-curve artifact path")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker count whose speedup is gated")
    ap.add_argument("--threshold", type=float, default=1.0,
                    help="required speedup with >= 2 effective cores")
    ap.add_argument("--parity", type=float, default=0.9,
                    help="required speedup on a single-core host")
    ap.add_argument("--min-large-seconds", type=float, default=0.5,
                    help="sequential time below which a circuit is too "
                         "small to gate on")
    ap.add_argument("--min-pass", type=int, default=2,
                    help="large circuits that must meet the bar")
    args = ap.parse_args()

    try:
        with open(args.input, encoding="utf-8") as f:
            bench = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot read {args.input}: {e}", file=sys.stderr)
        return 1

    results = bench.get("results", [])
    if not results:
        print(f"FAIL: {args.input} has no results", file=sys.stderr)
        return 1

    cores = int(bench.get("hardware_concurrency", 1))
    multicore = cores >= 2
    bar = args.threshold if multicore else args.parity

    # results[] -> circuit -> config row -> (elapsed, checksum)
    grid = {}
    for r in results:
        grid.setdefault(r["circuit"], {})[r["config"]] = (
            float(r["elapsed_s"]), int(r["checksum"]))

    gated_row = str(args.workers)
    failures = []
    passes = []
    curves = []
    for circuit, rows in grid.items():
        checksums = {c for _, c in rows.values()}
        if len(checksums) != 1:
            failures.append(f"{circuit}: checksums differ across "
                            f"configurations ({sorted(checksums)})")
            continue
        if "Seq" not in rows:
            failures.append(f"{circuit}: no Seq row to compute speedup from")
            continue
        seq_s = rows["Seq"][0]
        curve = {
            "circuit": circuit,
            "seq_s": seq_s,
            "rows": [
                {"config": cfg, "elapsed_s": el,
                 "speedup": (seq_s / el) if el > 0 else 0.0}
                for cfg, (el, _) in sorted(
                    rows.items(), key=lambda kv: (kv[0] != "Seq", kv[0]))
            ],
        }
        large = seq_s >= args.min_large_seconds
        curve["large"] = large
        if large:
            if gated_row not in rows:
                failures.append(f"{circuit}: no {gated_row}-worker row")
            else:
                speedup = seq_s / rows[gated_row][0]
                curve["gated_speedup"] = speedup
                if speedup >= bar:
                    passes.append((circuit, speedup))
                else:
                    failures.append(
                        f"{circuit}: {gated_row}-worker speedup "
                        f"{speedup:.3f} < {bar:.2f}")
        curves.append(curve)

    ok = len(passes) >= args.min_pass and not failures
    verdict = {
        "bench": "speedup_gate",
        "source": args.input,
        "hardware_concurrency": cores,
        "gated_workers": args.workers,
        "required_speedup": bar,
        "mode": "speedup" if multicore else "single-core-parity",
        "min_large_seconds": args.min_large_seconds,
        "min_pass": args.min_pass,
        "passed_circuits": [
            {"circuit": c, "speedup": s} for c, s in passes],
        "failures": failures,
        "ok": ok,
        "curves": curves,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(verdict, f, indent=2)
        f.write("\n")

    for c, s in passes:
        print(f"PASS {c}: {args.workers}-worker speedup {s:.3f} "
              f">= {bar:.2f} ({verdict['mode']})")
    for msg in failures:
        print(f"FAIL {msg}", file=sys.stderr)
    if len(passes) < args.min_pass:
        print(f"FAIL: only {len(passes)} large circuit(s) met the bar; "
              f"{args.min_pass} required", file=sys.stderr)
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
