// pbdd_replica — standalone read-replica process (docs/REPLICATION.md).
//
//   pbdd_replica --port N --dir DIR [--workers N] [--discipline D]
//                [--shards N] [--metrics-every SECS] [--http-port N]
//                [--name NAME] [--trace FILE]
//
//   --port N             listen port (0 = ephemeral; the bound port is
//                        printed either way so scripts can scrape it)
//   --dir DIR            working directory for applied.snap/incoming.snap
//                        (must exist)
//   --workers N          restore worker count (default 2) — may differ from
//                        the writer's; restore rehashes if shapes mismatch
//   --discipline D       passlock | sharded | lockfree (default sharded)
//   --shards N           table shards for the sharded discipline
//   --metrics-every S    dump pbdd_repl_* metrics to stdout every S seconds
//                        (0 = only at exit)
//   --http-port N        serve /metrics, /healthz, /tracez over HTTP
//                        (0 = ephemeral; the bound port is printed)
//   --name NAME          trace process identity sent to the writer in the
//                        HelloAck handshake (default "r<pid>")
//   --trace FILE         record a trace session and export FILE at exit
//                        (needs a -DPBDD_TRACE=ON build)
//
// Runs until SIGINT/SIGTERM. The writer connects and ships snapshot epochs;
// routers connect and issue reads. Everything arrives on the same port.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "net/http.hpp"
#include "obs/trace.hpp"
#include "replica/replica_server.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N --dir DIR [--workers N]\n"
               "          [--discipline passlock|sharded|lockfree] "
               "[--shards N] [--metrics-every SECS]\n"
               "          [--http-port N] [--name NAME] [--trace FILE]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbdd;
  repl::ReplicaOptions opts;
  opts.config.workers = 2;
  opts.config.table_discipline = core::TableDiscipline::kSharded;
  unsigned metrics_every = 0;
  bool have_port = false;
  bool have_http = false;
  std::uint16_t http_port = 0;
  std::string name = "r" + std::to_string(::getpid());
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(
          std::strtoul(next().c_str(), nullptr, 10));
      have_port = true;
    } else if (arg == "--dir") {
      opts.dir = next();
    } else if (arg == "--workers") {
      opts.config.workers = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--discipline") {
      const std::string d = next();
      if (d == "passlock") {
        opts.config.table_discipline = core::TableDiscipline::kPassLock;
      } else if (d == "sharded") {
        opts.config.table_discipline = core::TableDiscipline::kSharded;
      } else if (d == "lockfree") {
        opts.config.table_discipline = core::TableDiscipline::kLockFree;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--shards") {
      opts.config.table_shards = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--metrics-every") {
      metrics_every = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--http-port") {
      http_port = static_cast<std::uint16_t>(
          std::strtoul(next().c_str(), nullptr, 10));
      have_http = true;
    } else if (arg == "--name") {
      name = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (!have_port) usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  obs::Tracer::instance().set_process_name(name);
  if (!trace_path.empty()) {
    if (!obs::trace_compiled()) {
      std::fprintf(stderr,
                   "error: --trace needs a build with -DPBDD_TRACE=ON\n");
      return 2;
    }
    obs::Tracer::instance().start();
  }

  try {
    repl::ReplicaServer server(opts);
    server.start();
    std::printf("pbdd_replica: listening on 127.0.0.1:%u, dir=%s\n",
                server.port(), opts.dir.c_str());

    net::HttpServer http;
    if (have_http) {
      http.handle("/metrics", [&server] {
        net::HttpResponse r;
        r.content_type = net::kPrometheusContentType;
        r.body = server.metrics_text();
        return r;
      });
      http.handle("/healthz", [&server] {
        net::HttpResponse r;
        r.content_type = "application/json";
        r.body = "{\"status\": \"ok\", \"role\": \"replica\", "
                 "\"applied_epoch\": " +
                 std::to_string(server.applied_epoch()) + "}\n";
        return r;
      });
      http.handle("/tracez", [] {
        net::HttpResponse r;
        r.content_type = "application/json";
        r.body = obs::Tracer::instance().status_json();
        return r;
      });
      http.start(http_port);
      std::printf("pbdd_replica: http on 127.0.0.1:%u\n", http.port());
    }
    std::fflush(stdout);

    auto last_dump = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (metrics_every > 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_dump >= std::chrono::seconds(metrics_every)) {
          last_dump = now;
          std::fputs(server.metrics_text().c_str(), stdout);
          std::fflush(stdout);
        }
      }
    }
    http.stop();
    server.stop();
    if (!trace_path.empty()) {
      obs::Tracer& tracer = obs::Tracer::instance();
      tracer.stop();
      const std::size_t events = tracer.write_chrome_trace_file(trace_path);
      std::printf("pbdd_replica: wrote %s: %zu trace events\n",
                  trace_path.c_str(), events);
    }
    const repl::ReplicaServer::Counters c = server.counters();
    std::printf(
        "pbdd_replica: exiting at epoch %llu — %llu ships applied, "
        "%llu naks, %llu levels received, %llu spliced, %llu reads\n",
        static_cast<unsigned long long>(server.applied_epoch()),
        static_cast<unsigned long long>(c.ships_applied),
        static_cast<unsigned long long>(c.ship_naks),
        static_cast<unsigned long long>(c.levels_received),
        static_cast<unsigned long long>(c.levels_spliced),
        static_cast<unsigned long long>(c.reads_served));
    std::fputs(server.metrics_text().c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
