// Closed-loop load generator for the multi-session BDD service.
//
// N client threads each own one session and build real circuits through it:
// every pass walks a circuit level by level (gates within a level are
// independent, so each level is one BatchOp request — the paper's top-level
// operation batches), with the variable mapping rotated per pass so
// successive passes build genuinely different functions. The mix cycles
// arithmetic, comparator, parity, and control circuits across sessions.
//
// Measures per-request latency (submit to future-ready) across all
// sessions and reports p50/p95/p99/max plus throughput and the service's
// own metrics (including the governor gauges) as a JSON artifact:
//
//   pbdd_loadgen --sessions 8 --passes 3 --json BENCH_service_latency.json
//
// Exit code 0 iff every session opened, every request resolved, nothing
// came back kFailed, and every session completed at least one full pass.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "fault/report.hpp"
#include "obs/trace.hpp"
#include "service/bdd_service.hpp"

namespace {

using namespace pbdd;
using Clock = std::chrono::steady_clock;

struct Cli {
  unsigned sessions = 8;
  unsigned passes = 3;       ///< full circuit builds per session
  unsigned workers = 4;
  std::size_t budget = std::size_t{1} << 22;
  std::size_t queue_capacity = 64;
  unsigned deadline_ms = 0;  ///< every 4th request gets this deadline (0=off)
  unsigned checkpoint_every = 0;  ///< periodic service checkpoint (batches)
  std::string checkpoint_path = "pbdd_checkpoint.snap";
  std::string json_path;
  std::string trace_path;
  /// Fault mode: every pass is one stuck-at fault campaign instead of a
  /// circuit build — the highest-traffic workload the service has. Reports
  /// are cross-checked for byte determinism between sessions sharing a
  /// circuit.
  bool fault = false;
  unsigned fault_batch = 16;       ///< faults per campaign wave
  std::size_t fault_max_nets = 48; ///< site cap per campaign (0 = all)
  /// Out-of-core paging: spill directory + barrier-time resident target.
  /// With a spill dir set, the governor demotes before it defers or sheds —
  /// the demote-not-shed traffic pattern (docs/OOC.md).
  std::string spill_dir;
  std::size_t pager_budget = 0;
  bool estimate_demand = false;  ///< price batches with the max-cut model
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: pbdd_loadgen [--sessions N] [--passes N] [--workers N]\n"
               "                    [--budget NODES] [--queue N]\n"
               "                    [--deadline-ms MS] [--json PATH]\n"
               "                    [--checkpoint-every N] "
               "[--checkpoint-path PATH] [--trace PATH]\n"
               "                    [--fault] [--fault-batch N] "
               "[--fault-max-nets N]\n"
               "                    [--spill-dir DIR] [--pager-budget NODES] "
               "[--estimate-demand]\n");
  std::exit(2);
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--sessions") cli.sessions = std::stoul(next());
    else if (a == "--passes") cli.passes = std::stoul(next());
    else if (a == "--workers") cli.workers = std::stoul(next());
    else if (a == "--budget") cli.budget = std::stoull(next());
    else if (a == "--queue") cli.queue_capacity = std::stoull(next());
    else if (a == "--deadline-ms") cli.deadline_ms = std::stoul(next());
    else if (a == "--checkpoint-every") cli.checkpoint_every = std::stoul(next());
    else if (a == "--checkpoint-path") cli.checkpoint_path = next();
    else if (a == "--json") cli.json_path = next();
    else if (a == "--trace") cli.trace_path = next();
    else if (a == "--fault") cli.fault = true;
    else if (a == "--fault-batch") cli.fault_batch = std::stoul(next());
    else if (a == "--fault-max-nets") cli.fault_max_nets = std::stoull(next());
    else if (a == "--spill-dir") cli.spill_dir = next();
    else if (a == "--pager-budget") cli.pager_budget = std::stoull(next());
    else if (a == "--estimate-demand") cli.estimate_demand = true;
    else usage();
  }
  if (cli.sessions == 0 || cli.passes == 0) usage();
  return cli;
}

/// The mixed workload: session s builds pool[s % pool.size()] repeatedly.
std::vector<circuit::Circuit> make_pool() {
  std::vector<circuit::Circuit> pool;
  pool.push_back(circuit::multiplier(4).binarized());
  pool.push_back(circuit::ripple_adder(8).binarized());
  pool.push_back(circuit::comparator(8).binarized());
  pool.push_back(circuit::parity_tree(12).binarized());
  pool.push_back(circuit::hamming_encoder(8).binarized());
  pool.push_back(circuit::priority_encoder(12).binarized());
  return pool;
}

struct ClientStats {
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t ok = 0;
  std::uint64_t non_ok = 0;
  std::uint64_t ops = 0;
  unsigned passes_completed = 0;
  std::string error;
};

/// Build `circ` through the service, one request per level. Returns false
/// if the pass had to be abandoned (a request failed twice).
bool run_pass(service::BddService& svc, service::SessionId sid,
              const circuit::Circuit& circ, unsigned pass, unsigned session,
              const Cli& cli, ClientStats& stats) {
  const unsigned num_vars = svc.config().num_vars;
  const std::vector<std::uint32_t> levels = circ.levels();
  std::uint32_t max_level = 0;
  for (const std::uint32_t l : levels) max_level = std::max(max_level, l);

  std::vector<core::Bdd> value(circ.num_gates());
  // Inputs: rotate the variable mapping by pass so each pass builds
  // different functions in the shared variable space.
  {
    unsigned pos = 0;
    for (const std::uint32_t id : circ.inputs()) {
      value[id] = svc.var((pos + pass * 7 + session * 3) % num_vars);
      ++pos;
    }
  }

  unsigned request_index = 0;
  for (std::uint32_t level = 0; level <= max_level; ++level) {
    std::vector<core::BatchOp> ops;
    std::vector<std::uint32_t> targets;
    for (std::uint32_t id = 0; id < circ.num_gates(); ++id) {
      if (levels[id] != level) continue;
      const circuit::Gate& g = circ.gate(id);
      switch (g.type) {
        case circuit::GateType::Input:
          break;  // mapped above
        case circuit::GateType::Const0:
          value[id] = svc.zero();
          break;
        case circuit::GateType::Const1:
          value[id] = svc.one();
          break;
        case circuit::GateType::Buf:
          value[id] = value[g.fanins[0]];
          break;
        case circuit::GateType::Not:
          // No unary service op; NAND with itself is the complement.
          ops.push_back(core::BatchOp{Op::Nand, value[g.fanins[0]],
                                      value[g.fanins[0]]});
          targets.push_back(id);
          break;
        default:
          ops.push_back(core::BatchOp{circuit::gate_op(g.type),
                                      value[g.fanins[0]],
                                      value[g.fanins[1]]});
          targets.push_back(id);
          break;
      }
    }
    if (ops.empty()) continue;

    service::SubmitOptions opts;
    opts.priority = static_cast<service::Priority>(session % 3);
    // The client's own handles pin the values; roots are registered only
    // when checkpointing so the periodic snapshot has something to persist
    // (release_session_roots at end of pass keeps the accounting bounded).
    opts.register_roots = cli.checkpoint_every > 0;
    const bool with_deadline =
        cli.deadline_ms != 0 && (request_index % 4) == 3;
    for (int attempt = 0;; ++attempt) {
      if (with_deadline && attempt == 0) {
        opts.deadline =
            Clock::now() + std::chrono::milliseconds(cli.deadline_ms);
      } else {
        opts.deadline.reset();
      }
      const Clock::time_point t0 = Clock::now();
      const service::RequestResult res = svc.execute(sid, ops, opts);
      stats.latencies_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()));
      if (res.status == service::RequestStatus::kOk) {
        stats.ok += 1;
        stats.ops += ops.size();
        for (std::size_t k = 0; k < targets.size(); ++k) {
          value[targets[k]] = res.roots[k];
        }
        break;
      }
      stats.non_ok += 1;
      if (res.status == service::RequestStatus::kFailed) {
        stats.error = "session " + std::to_string(session) +
                      ": unexpected kFailed: " + res.error;
        return false;
      }
      if (attempt >= 1) return false;  // abandoned after one retry
      if (res.retry_after.count() > 0) {
        std::this_thread::sleep_for(res.retry_after);
      }
    }
    ++request_index;
  }
  return true;
}

/// Cross-session determinism check for fault mode: the first report per
/// pool circuit is the reference; every later campaign on the same circuit
/// must reproduce it byte-for-byte.
struct FaultReportStore {
  std::mutex mutex;
  std::vector<std::string> reports;  // one slot per pool circuit
};

/// One pass in fault mode = one stuck-at campaign through the service.
bool run_fault_pass(service::BddService& svc, service::SessionId sid,
                    const std::shared_ptr<const circuit::Circuit>& circ,
                    std::size_t pool_index, unsigned session, const Cli& cli,
                    ClientStats& stats, FaultReportStore& store) {
  service::SubmitOptions opts;
  opts.priority = static_cast<service::Priority>(session % 3);
  opts.register_roots = false;
  service::FaultCampaignOptions fo;
  fo.batch_faults = cli.fault_batch;
  fo.max_nets = cli.fault_max_nets;

  for (int attempt = 0;; ++attempt) {
    const Clock::time_point t0 = Clock::now();
    const service::RequestResult res =
        svc.run_fault_campaign(sid, circ, fo, opts);
    stats.latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
    if (res.status == service::RequestStatus::kOk) {
      stats.ok += 1;
      stats.ops += res.fault->stats.faults_evaluated;
      std::string verify_error;
      if (!fault::verify_report(res.fault->report, &verify_error)) {
        stats.error = "session " + std::to_string(session) +
                      ": report self-check failed: " + verify_error;
        return false;
      }
      std::lock_guard<std::mutex> lk(store.mutex);
      std::string& reference = store.reports[pool_index];
      if (reference.empty()) {
        reference = res.fault->report;
      } else if (reference != res.fault->report) {
        stats.error = "session " + std::to_string(session) +
                      ": fault report diverged from another session's on " +
                      circ->name();
        return false;
      }
      return true;
    }
    stats.non_ok += 1;
    if (res.status == service::RequestStatus::kFailed) {
      stats.error = "session " + std::to_string(session) +
                    ": unexpected kFailed: " + res.error;
      return false;
    }
    if (attempt >= 1) return false;
    if (res.retry_after.count() > 0) {
      std::this_thread::sleep_for(res.retry_after);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  const std::vector<circuit::Circuit> pool = make_pool();

  unsigned max_inputs = 0;
  for (const circuit::Circuit& c : pool) {
    max_inputs = std::max(max_inputs,
                          static_cast<unsigned>(c.inputs().size()));
  }

  service::ServiceConfig cfg;
  cfg.num_vars = max_inputs;
  cfg.engine.workers = cli.workers;
  cfg.queue_capacity = cli.queue_capacity;
  cfg.live_node_budget = cli.budget;
  cfg.checkpoint_every_batches = cli.checkpoint_every;
  cfg.checkpoint_path = cli.checkpoint_path;
  cfg.spill_dir = cli.spill_dir;
  cfg.pager_node_budget = cli.pager_budget;
  cfg.use_demand_estimator = cli.estimate_demand;

  if (!cli.trace_path.empty()) {
    if (!obs::trace_compiled()) {
      std::fprintf(stderr,
                   "error: --trace needs a build with -DPBDD_TRACE=ON\n");
      return 2;
    }
    obs::Tracer::instance().start();
  }
  service::BddService svc(cfg);

  // Fault mode shares the circuits across sessions via shared_ptr (queued
  // requests can outlive a client's scope) and pins per-circuit reports for
  // the cross-session determinism check.
  std::vector<std::shared_ptr<const circuit::Circuit>> shared_pool;
  FaultReportStore report_store;
  if (cli.fault) {
    for (const circuit::Circuit& c : pool) {
      shared_pool.push_back(std::make_shared<const circuit::Circuit>(c));
    }
    report_store.reports.resize(pool.size());
  }

  std::vector<ClientStats> stats(cli.sessions);
  std::atomic<unsigned> sessions_opened{0};
  const Clock::time_point wall0 = Clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(cli.sessions);
    for (unsigned s = 0; s < cli.sessions; ++s) {
      clients.emplace_back([&, s] {
        ClientStats& my = stats[s];
        const service::SessionId sid = svc.open_session();
        if (sid == service::kInvalidSession) {
          my.error = "session " + std::to_string(s) + ": open failed";
          return;
        }
        sessions_opened.fetch_add(1, std::memory_order_relaxed);
        const std::size_t pool_index = s % pool.size();
        const circuit::Circuit& circ = pool[pool_index];
        for (unsigned pass = 0; pass < cli.passes; ++pass) {
          const bool pass_ok =
              cli.fault ? run_fault_pass(svc, sid, shared_pool[pool_index],
                                         pool_index, s, cli, my,
                                         report_store)
                        : run_pass(svc, sid, circ, pass, s, cli, my);
          if (!pass_ok) break;
          ++my.passes_completed;
          svc.release_session_roots(sid);
        }
        svc.close_session(sid);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  if (!cli.trace_path.empty()) {
    // The dispatcher still runs, but it is idle now (all clients joined),
    // so the buffers are quiescent enough to export.
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.stop();
    const std::size_t events =
        tracer.write_chrome_trace_file(cli.trace_path);
    std::printf("wrote %s: %zu trace events\n", cli.trace_path.c_str(),
                events);
  }

  // Aggregate.
  std::vector<std::uint64_t> lat;
  std::uint64_t ok = 0, non_ok = 0, ops = 0;
  unsigned min_passes = cli.passes;
  std::string error;
  for (const ClientStats& s : stats) {
    lat.insert(lat.end(), s.latencies_ns.begin(), s.latencies_ns.end());
    ok += s.ok;
    non_ok += s.non_ok;
    ops += s.ops;
    min_passes = std::min(min_passes, s.passes_completed);
    if (error.empty() && !s.error.empty()) error = s.error;
  }
  std::sort(lat.begin(), lat.end());
  const auto pct = [&](double p) -> double {
    if (lat.empty()) return 0.0;
    const std::size_t idx = std::min(
        lat.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(lat.size())));
    return static_cast<double>(lat[idx]) / 1000.0;  // us
  };
  double mean_us = 0.0;
  for (const std::uint64_t v : lat) {
    mean_us += static_cast<double>(v) / 1000.0;
  }
  if (!lat.empty()) mean_us /= static_cast<double>(lat.size());

  const service::ServiceMetrics m = svc.metrics();
  std::printf(
      "sessions %u  passes >= %u  requests %zu (ok %llu, non-ok %llu)\n"
      "latency us: p50 %.1f  p95 %.1f  p99 %.1f  max %.1f  mean %.1f\n"
      "throughput: %.0f requests/s, %.0f ops/s over %.2fs\n"
      "governor: %llu gcs, %llu deferrals, %llu shed, max live %zu / %zu\n",
      cli.sessions, min_passes, lat.size(),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(non_ok), pct(0.50), pct(0.95),
      pct(0.99), pct(1.0), mean_us,
      wall_s > 0 ? static_cast<double>(lat.size()) / wall_s : 0.0,
      wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0, wall_s,
      static_cast<unsigned long long>(m.governor_gcs),
      static_cast<unsigned long long>(m.deferrals),
      static_cast<unsigned long long>(m.shed), m.max_live_nodes_observed,
      m.live_node_budget);
  if (cli.fault) {
    std::printf(
        "fault: %llu campaigns (%llu cancelled), %llu faults "
        "(%llu detected, %llu equivalent), %llu engine batches\n",
        static_cast<unsigned long long>(m.fault_campaigns_completed),
        static_cast<unsigned long long>(m.fault_campaigns_cancelled),
        static_cast<unsigned long long>(m.fault_faults_evaluated),
        static_cast<unsigned long long>(m.fault_faults_detected),
        static_cast<unsigned long long>(m.fault_faults_equivalent),
        static_cast<unsigned long long>(m.fault_batches));
  }
  if (!cli.spill_dir.empty()) {
    std::printf(
        "paging: %llu demotions, %llu faults (%llu prefetch hits), "
        "%llu levels / %llu nodes on disk, shed=%llu\n",
        static_cast<unsigned long long>(m.ooc_demotions),
        static_cast<unsigned long long>(m.ooc_faults),
        static_cast<unsigned long long>(m.ooc_prefetch_hits),
        static_cast<unsigned long long>(m.ooc_spilled_levels),
        static_cast<unsigned long long>(m.ooc_spilled_nodes),
        static_cast<unsigned long long>(m.shed));
  }
  if (cli.checkpoint_every > 0) {
    std::printf(
        "checkpoints: %llu saved (%llu failed), %llu bytes, "
        "pause us: p95 %.1f  max %.1f  last %.1f\n",
        static_cast<unsigned long long>(m.snapshots_saved),
        static_cast<unsigned long long>(m.snapshot_failures),
        static_cast<unsigned long long>(m.snapshot_bytes_written),
        static_cast<double>(m.snapshot_pause_ns_p95) / 1000.0,
        static_cast<double>(m.snapshot_pause_ns_max) / 1000.0,
        static_cast<double>(m.snapshot_pause_ns_last) / 1000.0);
  }

  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"service_loadgen\",\n"
        << "  \"sessions\": " << cli.sessions << ",\n"
        << "  \"passes\": " << cli.passes << ",\n"
        << "  \"workers\": " << cli.workers << ",\n"
        << "  \"wall_s\": " << wall_s << ",\n"
        << "  \"requests\": {\"total\": " << lat.size() << ", \"ok\": " << ok
        << ", \"non_ok\": " << non_ok << "},\n"
        << "  \"latency_us\": {\"p50\": " << pct(0.50)
        << ", \"p95\": " << pct(0.95) << ", \"p99\": " << pct(0.99)
        << ", \"max\": " << pct(1.0) << ", \"mean\": " << mean_us << "},\n"
        << "  \"throughput\": {\"requests_per_s\": "
        << (wall_s > 0 ? static_cast<double>(lat.size()) / wall_s : 0.0)
        << ", \"ops_per_s\": "
        << (wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0) << "},\n"
        << "  \"fault\": {\"enabled\": " << (cli.fault ? 1 : 0)
        << ", \"campaigns\": " << m.fault_campaigns_completed
        << ", \"cancelled\": " << m.fault_campaigns_cancelled
        << ", \"faults\": " << m.fault_faults_evaluated
        << ", \"detected\": " << m.fault_faults_detected
        << ", \"equivalent\": " << m.fault_faults_equivalent << "},\n"
        << "  \"snapshot\": {\"checkpoint_every\": " << cli.checkpoint_every
        << ", \"saved\": " << m.snapshots_saved
        << ", \"failures\": " << m.snapshot_failures
        << ", \"bytes\": " << m.snapshot_bytes_written
        << ", \"pause_us\": {\"p95\": "
        << static_cast<double>(m.snapshot_pause_ns_p95) / 1000.0
        << ", \"max\": "
        << static_cast<double>(m.snapshot_pause_ns_max) / 1000.0
        << ", \"last\": "
        << static_cast<double>(m.snapshot_pause_ns_last) / 1000.0 << "}},\n"
        << "  \"service\": " << svc.metrics_json() << "\n}\n";
    std::printf("wrote %s\n", cli.json_path.c_str());
  }

  if (!error.empty()) {
    std::fprintf(stderr, "FAIL: %s\n", error.c_str());
    return 1;
  }
  if (sessions_opened.load() != cli.sessions) {
    std::fprintf(stderr, "FAIL: only %u/%u sessions opened\n",
                 sessions_opened.load(), cli.sessions);
    return 1;
  }
  if (min_passes == 0 || ok == 0) {
    std::fprintf(stderr, "FAIL: a session completed no full pass\n");
    return 1;
  }
  if (cli.checkpoint_every > 0 &&
      (m.snapshots_saved == 0 || m.snapshot_failures > 0)) {
    std::fprintf(stderr, "FAIL: checkpointing enabled but %llu saved, %llu failed\n",
                 static_cast<unsigned long long>(m.snapshots_saved),
                 static_cast<unsigned long long>(m.snapshot_failures));
    return 1;
  }
  return 0;
}
