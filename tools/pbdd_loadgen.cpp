// Closed-loop load generator for the multi-session BDD service.
//
// N client threads each own one session and build real circuits through it:
// every pass walks a circuit level by level (gates within a level are
// independent, so each level is one BatchOp request — the paper's top-level
// operation batches), with the variable mapping rotated per pass so
// successive passes build genuinely different functions. The mix cycles
// arithmetic, comparator, parity, and control circuits across sessions.
//
// Measures per-request latency (submit to future-ready) across all
// sessions and reports p50/p95/p99/max plus throughput and the service's
// own metrics (including the governor gauges) as a JSON artifact:
//
//   pbdd_loadgen --sessions 8 --passes 3 --json BENCH_service_latency.json
//
// Replication mode (--read-ratio with --replica and/or --replicas): a
// shipper thread periodically checkpoints the service (save_all) and ships
// the snapshot to the replica fleet; clients interleave read-class requests
// (eval / sat_count / root info on their own registered roots) with build
// requests at the requested ratio, routed through the consistent-hash
// SessionRouter. Latency is reported per class (build vs read), and after
// the clients quiesce a final epoch is shipped and replica sat_count /
// eval answers are cross-checked against the writer's — any mismatch is a
// nonzero exit.
//
// Exit code 0 iff every session opened, every request resolved, nothing
// came back kFailed, every session completed at least one full pass, and
// (replication mode) the replica cross-check matched.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "fault/report.hpp"
#include "net/http.hpp"
#include "obs/trace.hpp"
#include "replica/replica_server.hpp"
#include "replica/router.hpp"
#include "replica/wire.hpp"
#include "replica/writer.hpp"
#include "service/bdd_service.hpp"

namespace {

using namespace pbdd;
using Clock = std::chrono::steady_clock;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

struct Cli {
  unsigned sessions = 8;
  unsigned passes = 3;       ///< full circuit builds per session
  unsigned workers = 4;
  std::size_t budget = std::size_t{1} << 22;
  std::size_t queue_capacity = 64;
  unsigned deadline_ms = 0;  ///< every 4th request gets this deadline (0=off)
  unsigned checkpoint_every = 0;  ///< periodic service checkpoint (batches)
  std::string checkpoint_path = "pbdd_checkpoint.snap";
  std::string json_path;
  std::string trace_path;
  /// Fault mode: every pass is one stuck-at fault campaign instead of a
  /// circuit build — the highest-traffic workload the service has. Reports
  /// are cross-checked for byte determinism between sessions sharing a
  /// circuit.
  bool fault = false;
  unsigned fault_batch = 16;       ///< faults per campaign wave
  std::size_t fault_max_nets = 48; ///< site cap per campaign (0 = all)
  /// Out-of-core paging: spill directory + barrier-time resident target.
  /// With a spill dir set, the governor demotes before it defers or sheds —
  /// the demote-not-shed traffic pattern (docs/OOC.md).
  std::string spill_dir;
  std::size_t pager_budget = 0;
  bool estimate_demand = false;  ///< price batches with the max-cut model
  /// Replication: fraction of requests that are read-class (routed to
  /// replicas), replica endpoints (explicit and/or in-process), shipping
  /// cadence, and the writer-side snapshot staging path.
  double read_ratio = 0.0;
  std::vector<std::string> replicas;  ///< --replica host:port (repeatable)
  unsigned inproc_replicas = 0;       ///< --replicas N (spawned in-process)
  std::string replica_dir = "pbdd_replicas";
  std::string ship_path = "pbdd_ship.snap";
  unsigned ship_every_ms = 400;
  /// Telemetry endpoints: --http-port serves /metrics, /healthz, /tracez
  /// (0 = ephemeral; the bound port is printed). --linger-ms holds the
  /// process (and its endpoints) alive after the report so external
  /// scrapers get a guaranteed window; SIGINT/SIGTERM ends it early.
  bool http = false;
  std::uint16_t http_port = 0;
  unsigned linger_ms = 0;
  std::string name = "writer";  ///< trace process identity (--name)

  [[nodiscard]] bool replication() const {
    return read_ratio > 0.0 || !replicas.empty() || inproc_replicas > 0;
  }
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: pbdd_loadgen [--sessions N] [--passes N] [--workers N]\n"
               "                    [--budget NODES] [--queue N]\n"
               "                    [--deadline-ms MS] [--json PATH]\n"
               "                    [--checkpoint-every N] "
               "[--checkpoint-path PATH] [--trace PATH]\n"
               "                    [--fault] [--fault-batch N] "
               "[--fault-max-nets N]\n"
               "                    [--spill-dir DIR] [--pager-budget NODES] "
               "[--estimate-demand]\n"
               "                    [--read-ratio R] [--replica HOST:PORT]... "
               "[--replicas N]\n"
               "                    [--replica-dir DIR] [--ship-path PATH] "
               "[--ship-every-ms MS]\n"
               "                    [--http-port N] [--linger-ms MS] "
               "[--name NAME]\n");
  std::exit(2);
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--sessions") cli.sessions = std::stoul(next());
    else if (a == "--passes") cli.passes = std::stoul(next());
    else if (a == "--workers") cli.workers = std::stoul(next());
    else if (a == "--budget") cli.budget = std::stoull(next());
    else if (a == "--queue") cli.queue_capacity = std::stoull(next());
    else if (a == "--deadline-ms") cli.deadline_ms = std::stoul(next());
    else if (a == "--checkpoint-every") cli.checkpoint_every = std::stoul(next());
    else if (a == "--checkpoint-path") cli.checkpoint_path = next();
    else if (a == "--json") cli.json_path = next();
    else if (a == "--trace") cli.trace_path = next();
    else if (a == "--fault") cli.fault = true;
    else if (a == "--fault-batch") cli.fault_batch = std::stoul(next());
    else if (a == "--fault-max-nets") cli.fault_max_nets = std::stoull(next());
    else if (a == "--spill-dir") cli.spill_dir = next();
    else if (a == "--pager-budget") cli.pager_budget = std::stoull(next());
    else if (a == "--estimate-demand") cli.estimate_demand = true;
    else if (a == "--read-ratio") cli.read_ratio = std::stod(next());
    else if (a == "--replica") cli.replicas.push_back(next());
    else if (a == "--replicas") cli.inproc_replicas = std::stoul(next());
    else if (a == "--replica-dir") cli.replica_dir = next();
    else if (a == "--ship-path") cli.ship_path = next();
    else if (a == "--ship-every-ms") cli.ship_every_ms = std::stoul(next());
    else if (a == "--http-port") {
      cli.http_port = static_cast<std::uint16_t>(std::stoul(next()));
      cli.http = true;
    }
    else if (a == "--linger-ms") cli.linger_ms = std::stoul(next());
    else if (a == "--name") cli.name = next();
    else usage();
  }
  if (cli.sessions == 0 || cli.passes == 0) usage();
  if (cli.read_ratio < 0.0 || cli.read_ratio >= 1.0) usage();
  if (cli.replication() && cli.fault) usage();  // one traffic shape at a time
  return cli;
}

/// The mixed workload: session s builds pool[s % pool.size()] repeatedly.
std::vector<circuit::Circuit> make_pool() {
  std::vector<circuit::Circuit> pool;
  pool.push_back(circuit::multiplier(4).binarized());
  pool.push_back(circuit::ripple_adder(8).binarized());
  pool.push_back(circuit::comparator(8).binarized());
  pool.push_back(circuit::parity_tree(12).binarized());
  pool.push_back(circuit::hamming_encoder(8).binarized());
  pool.push_back(circuit::priority_encoder(12).binarized());
  return pool;
}

struct ClientStats {
  std::vector<std::uint64_t> latencies_ns;       ///< build-class requests
  std::vector<std::uint64_t> read_latencies_ns;  ///< read-class requests
  std::uint64_t ok = 0;
  std::uint64_t non_ok = 0;
  std::uint64_t ops = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_unknown = 0;  ///< root not shipped yet (expected race)
  std::uint64_t reads_error = 0;
  unsigned passes_completed = 0;
  std::string error;
};

// ---- Replication-mode client state ------------------------------------------

struct ReplCtx {
  repl::SessionRouter* router = nullptr;
  repl::ReplicationWriter* writer = nullptr;
  double read_ratio = 0.0;
  unsigned num_vars = 0;
};

/// Per-client read-mix state. `readable` is the registered-root count as of
/// the last observed ship epoch: the save for epoch E completed before the
/// epoch advanced, so most of those roots are on every healthy replica.
/// Roots registered between the save and the observation race the ship —
/// replicas answer kUnknownRoot for them, which is counted, not failed.
struct ReadState {
  std::uint64_t seen_epoch = 0;
  std::size_t readable = 0;
  std::size_t registered = 0;
  double debt = 0.0;  ///< fractional reads owed (ratio accumulator)
  std::uint64_t req_id = 0;
  std::uint64_t rng = 1;
};

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// Issue the read-class requests owed after one build request: ratio r
/// means r/(1-r) reads per build in expectation, paid down via the debt
/// accumulator. Reads target the client's own session key (stable routing)
/// and its own shipped roots, cycling eval / sat_count / root-info.
void issue_reads(service::SessionId sid, unsigned session, ReplCtx& ctx,
                 ReadState& rs, ClientStats& stats) {
  const std::uint64_t epoch = ctx.writer ? ctx.writer->epoch() : 0;
  if (epoch != rs.seen_epoch) {
    rs.seen_epoch = epoch;
    rs.readable = rs.registered;
  }
  rs.debt += ctx.read_ratio / (1.0 - ctx.read_ratio);
  for (; rs.debt >= 1.0; rs.debt -= 1.0) {
    if (rs.readable == 0) continue;  // nothing shipped yet
    repl::ReadReq req;
    req.req_id = ++rs.req_id;
    req.root = "s" + std::to_string(sid) + "/r" +
               std::to_string(xorshift(rs.rng) % rs.readable);
    switch (rs.req_id % 3) {
      case 0:
        req.op = repl::ReadOp::kEval;
        req.assignment.resize(ctx.num_vars);
        for (unsigned v = 0; v < ctx.num_vars; ++v) {
          req.assignment[v] = (xorshift(rs.rng) & 1) != 0;
        }
        break;
      case 1:
        req.op = repl::ReadOp::kSatCount;
        break;
      default:
        req.op = repl::ReadOp::kRootInfo;
        break;
    }
    const Clock::time_point t0 = Clock::now();
    const repl::ReadResp resp = ctx.router->read(sid, req);
    stats.read_latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
    switch (resp.status) {
      case repl::ReadStatus::kOk:
        stats.reads_ok += 1;
        break;
      case repl::ReadStatus::kUnknownRoot:
        stats.reads_unknown += 1;
        break;
      default:
        stats.reads_error += 1;
        break;
    }
    (void)session;
  }
}

/// Build `circ` through the service, one request per level, interleaving
/// read-class requests when replication is on. Returns false if the pass
/// had to be abandoned (a request failed twice).
bool run_pass(service::BddService& svc, service::SessionId sid,
              const circuit::Circuit& circ, unsigned pass, unsigned session,
              const Cli& cli, ClientStats& stats, ReplCtx* repl,
              ReadState* rs) {
  const unsigned num_vars = svc.config().num_vars;
  const std::vector<std::uint32_t> levels = circ.levels();
  std::uint32_t max_level = 0;
  for (const std::uint32_t l : levels) max_level = std::max(max_level, l);

  std::vector<core::Bdd> value(circ.num_gates());
  // Inputs: rotate the variable mapping by pass so each pass builds
  // different functions in the shared variable space.
  {
    unsigned pos = 0;
    for (const std::uint32_t id : circ.inputs()) {
      value[id] = svc.var((pos + pass * 7 + session * 3) % num_vars);
      ++pos;
    }
  }

  unsigned request_index = 0;
  for (std::uint32_t level = 0; level <= max_level; ++level) {
    std::vector<core::BatchOp> ops;
    std::vector<std::uint32_t> targets;
    for (std::uint32_t id = 0; id < circ.num_gates(); ++id) {
      if (levels[id] != level) continue;
      const circuit::Gate& g = circ.gate(id);
      switch (g.type) {
        case circuit::GateType::Input:
          break;  // mapped above
        case circuit::GateType::Const0:
          value[id] = svc.zero();
          break;
        case circuit::GateType::Const1:
          value[id] = svc.one();
          break;
        case circuit::GateType::Buf:
          value[id] = value[g.fanins[0]];
          break;
        case circuit::GateType::Not:
          // No unary service op; NAND with itself is the complement.
          ops.push_back(core::BatchOp{Op::Nand, value[g.fanins[0]],
                                      value[g.fanins[0]]});
          targets.push_back(id);
          break;
        default:
          ops.push_back(core::BatchOp{circuit::gate_op(g.type),
                                      value[g.fanins[0]],
                                      value[g.fanins[1]]});
          targets.push_back(id);
          break;
      }
    }
    if (ops.empty()) continue;

    service::SubmitOptions opts;
    opts.priority = static_cast<service::Priority>(session % 3);
    // The client's own handles pin the values; roots are registered only
    // when checkpointing so the periodic snapshot has something to persist
    // (release_session_roots at end of pass keeps the accounting bounded).
    // Replication registers too: registered roots are what ships, and what
    // the read mix targets.
    opts.register_roots = cli.checkpoint_every > 0 || repl != nullptr;
    const bool with_deadline =
        cli.deadline_ms != 0 && (request_index % 4) == 3;
    for (int attempt = 0;; ++attempt) {
      if (with_deadline && attempt == 0) {
        opts.deadline =
            Clock::now() + std::chrono::milliseconds(cli.deadline_ms);
      } else {
        opts.deadline.reset();
      }
      const Clock::time_point t0 = Clock::now();
      const service::RequestResult res = svc.execute(sid, ops, opts);
      stats.latencies_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()));
      if (res.status == service::RequestStatus::kOk) {
        stats.ok += 1;
        stats.ops += ops.size();
        for (std::size_t k = 0; k < targets.size(); ++k) {
          value[targets[k]] = res.roots[k];
        }
        if (repl != nullptr) {
          rs->registered += targets.size();
          if (repl->read_ratio > 0.0) {
            issue_reads(sid, session, *repl, *rs, stats);
          }
        }
        break;
      }
      stats.non_ok += 1;
      if (res.status == service::RequestStatus::kFailed) {
        stats.error = "session " + std::to_string(session) +
                      ": unexpected kFailed: " + res.error;
        return false;
      }
      if (attempt >= 1) return false;  // abandoned after one retry
      if (res.retry_after.count() > 0) {
        std::this_thread::sleep_for(res.retry_after);
      }
    }
    ++request_index;
  }
  return true;
}

/// Cross-session determinism check for fault mode: the first report per
/// pool circuit is the reference; every later campaign on the same circuit
/// must reproduce it byte-for-byte.
struct FaultReportStore {
  std::mutex mutex;
  std::vector<std::string> reports;  // one slot per pool circuit
};

/// One pass in fault mode = one stuck-at campaign through the service.
bool run_fault_pass(service::BddService& svc, service::SessionId sid,
                    const std::shared_ptr<const circuit::Circuit>& circ,
                    std::size_t pool_index, unsigned session, const Cli& cli,
                    ClientStats& stats, FaultReportStore& store) {
  service::SubmitOptions opts;
  opts.priority = static_cast<service::Priority>(session % 3);
  opts.register_roots = false;
  service::FaultCampaignOptions fo;
  fo.batch_faults = cli.fault_batch;
  fo.max_nets = cli.fault_max_nets;

  for (int attempt = 0;; ++attempt) {
    const Clock::time_point t0 = Clock::now();
    const service::RequestResult res =
        svc.run_fault_campaign(sid, circ, fo, opts);
    stats.latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
    if (res.status == service::RequestStatus::kOk) {
      stats.ok += 1;
      stats.ops += res.fault->stats.faults_evaluated;
      std::string verify_error;
      if (!fault::verify_report(res.fault->report, &verify_error)) {
        stats.error = "session " + std::to_string(session) +
                      ": report self-check failed: " + verify_error;
        return false;
      }
      std::lock_guard<std::mutex> lk(store.mutex);
      std::string& reference = store.reports[pool_index];
      if (reference.empty()) {
        reference = res.fault->report;
      } else if (reference != res.fault->report) {
        stats.error = "session " + std::to_string(session) +
                      ": fault report diverged from another session's on " +
                      circ->name();
        return false;
      }
      return true;
    }
    stats.non_ok += 1;
    if (res.status == service::RequestStatus::kFailed) {
      stats.error = "session " + std::to_string(session) +
                    ": unexpected kFailed: " + res.error;
      return false;
    }
    if (attempt >= 1) return false;
    if (res.retry_after.count() > 0) {
      std::this_thread::sleep_for(res.retry_after);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  const std::vector<circuit::Circuit> pool = make_pool();

  unsigned max_inputs = 0;
  for (const circuit::Circuit& c : pool) {
    max_inputs = std::max(max_inputs,
                          static_cast<unsigned>(c.inputs().size()));
  }

  service::ServiceConfig cfg;
  cfg.num_vars = max_inputs;
  cfg.engine.workers = cli.workers;
  cfg.queue_capacity = cli.queue_capacity;
  cfg.live_node_budget = cli.budget;
  cfg.checkpoint_every_batches = cli.checkpoint_every;
  cfg.checkpoint_path = cli.checkpoint_path;
  cfg.spill_dir = cli.spill_dir;
  cfg.pager_node_budget = cli.pager_budget;
  cfg.use_demand_estimator = cli.estimate_demand;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // Identity before any replication handshake: Hello carries it to the
  // replicas and every trace export stamps it.
  obs::Tracer::instance().set_process_name(cli.name);
  if (!cli.trace_path.empty()) {
    if (!obs::trace_compiled()) {
      std::fprintf(stderr,
                   "error: --trace needs a build with -DPBDD_TRACE=ON\n");
      return 2;
    }
    obs::Tracer::instance().start();
  }
  service::BddService svc(cfg);

  // ---- Replication tier -----------------------------------------------------
  // In-process replicas (ephemeral ports) plus any --replica endpoints; one
  // writer shipping save_all snapshots on a cadence; one consistent-hash
  // router whose local fallback is the writer's own read path.
  std::vector<std::unique_ptr<repl::ReplicaServer>> inproc_replicas;
  std::unique_ptr<repl::ReplicationWriter> writer;
  std::unique_ptr<repl::SessionRouter> router;
  ReplCtx repl_ctx;
  std::thread shipper;
  std::atomic<bool> ship_stop{false};
  std::atomic<std::uint64_t> ship_failures{0};
  if (cli.replication()) {
    std::vector<std::string> endpoints = cli.replicas;
    if (cli.inproc_replicas > 0) {
      ::mkdir(cli.replica_dir.c_str(), 0755);
      for (unsigned r = 0; r < cli.inproc_replicas; ++r) {
        repl::ReplicaOptions ro;
        ro.port = 0;
        ro.dir = cli.replica_dir + "/r" + std::to_string(r);
        ::mkdir(ro.dir.c_str(), 0755);
        ro.config.workers = 2;
        ro.replica_id = r;
        auto server = std::make_unique<repl::ReplicaServer>(ro);
        server->start();
        endpoints.push_back("127.0.0.1:" + std::to_string(server->port()));
        inproc_replicas.push_back(std::move(server));
      }
    }
    repl::WriterOptions wo;
    wo.endpoints = endpoints;
    writer = std::make_unique<repl::ReplicationWriter>(wo);
    writer->connect();
    writer->start_heartbeats();
    repl::RouterOptions rto;
    rto.endpoints = endpoints;
    router = std::make_unique<repl::SessionRouter>(
        rto, [&svc, &writer](const repl::ReadReq& rq) {
          repl::ReadResp resp;
          resp.req_id = rq.req_id;
          resp.epoch = writer->epoch();
          service::BddService::ReadKind kind =
              rq.op == repl::ReadOp::kEval
                  ? service::BddService::ReadKind::kEval
                  : rq.op == repl::ReadOp::kSatCount
                        ? service::BddService::ReadKind::kSatCount
                        : service::BddService::ReadKind::kRootInfo;
          const service::BddService::ReadAnswer ans =
              svc.read_root(rq.root, kind, rq.assignment);
          resp.status =
              ans.ok ? repl::ReadStatus::kOk : repl::ReadStatus::kError;
          resp.value = ans.value;
          resp.sat = ans.sat;
          resp.error = ans.error;
          return resp;
        });
    repl_ctx.router = router.get();
    repl_ctx.writer = writer.get();
    repl_ctx.read_ratio = cli.read_ratio;
    repl_ctx.num_vars = cfg.num_vars;
    shipper = std::thread([&] {
      while (!ship_stop.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cli.ship_every_ms));
        if (ship_stop.load()) break;
        // One trace id per shipping round: ship_file picks up the thread's
        // id, so the checkpoint and every per-replica ship/apply share it.
        obs::Tracer::set_thread_trace_id(obs::Tracer::mint_trace_id());
        const service::RequestResult res = svc.save_all(cli.ship_path).get();
        if (res.status != service::RequestStatus::kOk) {
          ship_failures.fetch_add(1);
          continue;
        }
        const repl::ShipReport report = writer->ship_file(cli.ship_path);
        if (report.ok_count() < report.replicas.size()) {
          // Partial ship: replicas that missed this epoch are reconnected
          // and re-shipped next round; the router fails their reads over
          // to the writer meanwhile.
        }
      }
    });
  }

  // ---- Telemetry endpoints --------------------------------------------------
  net::HttpServer http;
  if (cli.http) {
    http.handle("/metrics", [&svc, &writer] {
      net::HttpResponse r;
      r.content_type = net::kPrometheusContentType;
      r.body = svc.metrics_text();
      if (writer != nullptr) r.body += writer->metrics_text();
      return r;
    });
    http.handle("/healthz", [&writer] {
      net::HttpResponse r;
      r.content_type = "application/json";
      r.body = "{\"status\": \"ok\", \"role\": \"writer\", "
               "\"snapshot_epoch\": " +
               std::to_string(writer != nullptr ? writer->epoch() : 0) +
               "}\n";
      return r;
    });
    http.handle("/tracez", [] {
      net::HttpResponse r;
      r.content_type = "application/json";
      r.body = obs::Tracer::instance().status_json();
      return r;
    });
    http.start(cli.http_port);
    std::printf("pbdd_loadgen: http on 127.0.0.1:%u\n", http.port());
    std::fflush(stdout);
  }

  // Fault mode shares the circuits across sessions via shared_ptr (queued
  // requests can outlive a client's scope) and pins per-circuit reports for
  // the cross-session determinism check.
  std::vector<std::shared_ptr<const circuit::Circuit>> shared_pool;
  FaultReportStore report_store;
  if (cli.fault) {
    for (const circuit::Circuit& c : pool) {
      shared_pool.push_back(std::make_shared<const circuit::Circuit>(c));
    }
    report_store.reports.resize(pool.size());
  }

  std::vector<ClientStats> stats(cli.sessions);
  // Replication keeps sessions (and their registered roots) alive past the
  // client threads so the quiescent cross-check can compare writer and
  // replica answers on the same roots; sessions close after the check.
  std::vector<service::SessionId> session_ids(cli.sessions,
                                              service::kInvalidSession);
  std::vector<ReadState> read_states(cli.sessions);
  const bool repl_on = cli.replication();
  std::atomic<unsigned> sessions_opened{0};
  const Clock::time_point wall0 = Clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(cli.sessions);
    for (unsigned s = 0; s < cli.sessions; ++s) {
      clients.emplace_back([&, s] {
        ClientStats& my = stats[s];
        const service::SessionId sid = svc.open_session();
        if (sid == service::kInvalidSession) {
          my.error = "session " + std::to_string(s) + ": open failed";
          return;
        }
        session_ids[s] = sid;
        read_states[s].rng = 0x9e3779b97f4a7c15ull ^ (s + 1);
        sessions_opened.fetch_add(1, std::memory_order_relaxed);
        const std::size_t pool_index = s % pool.size();
        const circuit::Circuit& circ = pool[pool_index];
        for (unsigned pass = 0; pass < cli.passes; ++pass) {
          const bool pass_ok =
              cli.fault ? run_fault_pass(svc, sid, shared_pool[pool_index],
                                         pool_index, s, cli, my,
                                         report_store)
                        : run_pass(svc, sid, circ, pass, s, cli, my,
                                   repl_on ? &repl_ctx : nullptr,
                                   repl_on ? &read_states[s] : nullptr);
          if (!pass_ok) break;
          ++my.passes_completed;
          if (!repl_on) svc.release_session_roots(sid);
        }
        if (!repl_on) svc.close_session(sid);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  // ---- Quiescent replication cross-check ------------------------------------
  // Clients are done, so the writer's live answers equal the final
  // snapshot's. Ship one last epoch, then compare replica sat_count / eval
  // answers (routed reads) against the writer's read path on sampled roots.
  std::uint64_t check_reads = 0, check_mismatches = 0, check_replica_reads = 0;
  std::string check_error;
  if (repl_on) {
    ship_stop.store(true);
    if (shipper.joinable()) shipper.join();
    const service::RequestResult res = svc.save_all(cli.ship_path).get();
    if (res.status != service::RequestStatus::kOk) {
      check_error = "final save_all failed: " + res.error;
    } else {
      const repl::ShipReport report = writer->ship_file(cli.ship_path);
      if (report.ok_count() == 0 && !report.replicas.empty()) {
        check_error = "final ship reached no replica";
      }
      const repl::SessionRouter::Counters before = router->counters();
      std::uint64_t req_id = 1u << 20;
      std::uint64_t check_rng = 0xdeadbeefcafef00dull;
      for (unsigned s = 0; s < cli.sessions; ++s) {
        const service::SessionId sid = session_ids[s];
        if (sid == service::kInvalidSession) continue;
        const std::size_t roots = read_states[s].registered;
        for (std::size_t j = 0; j < std::min<std::size_t>(roots, 4); ++j) {
          const std::string name =
              "s" + std::to_string(sid) + "/r" + std::to_string(j);
          // sat_count
          {
            repl::ReadReq rq;
            rq.req_id = ++req_id;
            rq.op = repl::ReadOp::kSatCount;
            rq.root = name;
            const repl::ReadResp remote = router->read(sid, rq);
            const service::BddService::ReadAnswer local = svc.read_root(
                name, service::BddService::ReadKind::kSatCount);
            ++check_reads;
            if (remote.status != repl::ReadStatus::kOk || !local.ok ||
                remote.sat != local.sat) {
              ++check_mismatches;
            }
          }
          // eval on a deterministic assignment
          {
            repl::ReadReq rq;
            rq.req_id = ++req_id;
            rq.op = repl::ReadOp::kEval;
            rq.root = name;
            rq.assignment.resize(cfg.num_vars);
            for (unsigned v = 0; v < cfg.num_vars; ++v) {
              rq.assignment[v] = (xorshift(check_rng) & 1) != 0;
            }
            const repl::ReadResp remote = router->read(sid, rq);
            const service::BddService::ReadAnswer local =
                svc.read_root(name, service::BddService::ReadKind::kEval,
                              rq.assignment);
            ++check_reads;
            if (remote.status != repl::ReadStatus::kOk || !local.ok ||
                remote.value != local.value) {
              ++check_mismatches;
            }
          }
        }
      }
      const repl::SessionRouter::Counters after = router->counters();
      check_replica_reads = after.replica_reads - before.replica_reads;
    }
    for (unsigned s = 0; s < cli.sessions; ++s) {
      if (session_ids[s] != service::kInvalidSession) {
        svc.close_session(session_ids[s]);
      }
    }
  }

  if (!cli.trace_path.empty()) {
    // The dispatcher still runs, but it is idle now (all clients joined),
    // so the buffers are quiescent enough to export.
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.stop();
    const std::size_t events =
        tracer.write_chrome_trace_file(cli.trace_path);
    std::printf("wrote %s: %zu trace events\n", cli.trace_path.c_str(),
                events);
  }

  // Aggregate. `lat` is the build class (every service request); reads are
  // the separate read class so the two latency profiles stay comparable.
  std::vector<std::uint64_t> lat;
  std::vector<std::uint64_t> read_lat;
  std::uint64_t ok = 0, non_ok = 0, ops = 0;
  std::uint64_t reads_ok = 0, reads_unknown = 0, reads_error = 0;
  unsigned min_passes = cli.passes;
  std::string error;
  for (const ClientStats& s : stats) {
    lat.insert(lat.end(), s.latencies_ns.begin(), s.latencies_ns.end());
    read_lat.insert(read_lat.end(), s.read_latencies_ns.begin(),
                    s.read_latencies_ns.end());
    ok += s.ok;
    non_ok += s.non_ok;
    ops += s.ops;
    reads_ok += s.reads_ok;
    reads_unknown += s.reads_unknown;
    reads_error += s.reads_error;
    min_passes = std::min(min_passes, s.passes_completed);
    if (error.empty() && !s.error.empty()) error = s.error;
  }
  std::sort(lat.begin(), lat.end());
  std::sort(read_lat.begin(), read_lat.end());
  const auto pct_of = [](const std::vector<std::uint64_t>& v,
                         double p) -> double {
    if (v.empty()) return 0.0;
    const std::size_t idx = std::min(
        v.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(v.size())));
    return static_cast<double>(v[idx]) / 1000.0;  // us
  };
  const auto pct = [&](double p) { return pct_of(lat, p); };
  const auto read_pct = [&](double p) { return pct_of(read_lat, p); };
  double mean_us = 0.0;
  for (const std::uint64_t v : lat) {
    mean_us += static_cast<double>(v) / 1000.0;
  }
  if (!lat.empty()) mean_us /= static_cast<double>(lat.size());

  const service::ServiceMetrics m = svc.metrics();
  std::printf(
      "sessions %u  passes >= %u  requests %zu (ok %llu, non-ok %llu)\n"
      "latency us: p50 %.1f  p95 %.1f  p99 %.1f  max %.1f  mean %.1f\n"
      "throughput: %.0f requests/s, %.0f ops/s over %.2fs\n"
      "governor: %llu gcs, %llu deferrals, %llu shed, max live %zu / %zu\n",
      cli.sessions, min_passes, lat.size(),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(non_ok), pct(0.50), pct(0.95),
      pct(0.99), pct(1.0), mean_us,
      wall_s > 0 ? static_cast<double>(lat.size()) / wall_s : 0.0,
      wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0, wall_s,
      static_cast<unsigned long long>(m.governor_gcs),
      static_cast<unsigned long long>(m.deferrals),
      static_cast<unsigned long long>(m.shed), m.max_live_nodes_observed,
      m.live_node_budget);
  if (cli.fault) {
    std::printf(
        "fault: %llu campaigns (%llu cancelled), %llu faults "
        "(%llu detected, %llu equivalent), %llu engine batches\n",
        static_cast<unsigned long long>(m.fault_campaigns_completed),
        static_cast<unsigned long long>(m.fault_campaigns_cancelled),
        static_cast<unsigned long long>(m.fault_faults_evaluated),
        static_cast<unsigned long long>(m.fault_faults_detected),
        static_cast<unsigned long long>(m.fault_faults_equivalent),
        static_cast<unsigned long long>(m.fault_batches));
  }
  if (!cli.spill_dir.empty()) {
    std::printf(
        "paging: %llu demotions, %llu faults (%llu prefetch hits), "
        "%llu levels / %llu nodes on disk, shed=%llu\n",
        static_cast<unsigned long long>(m.ooc_demotions),
        static_cast<unsigned long long>(m.ooc_faults),
        static_cast<unsigned long long>(m.ooc_prefetch_hits),
        static_cast<unsigned long long>(m.ooc_spilled_levels),
        static_cast<unsigned long long>(m.ooc_spilled_nodes),
        static_cast<unsigned long long>(m.shed));
  }
  if (repl_on) {
    const repl::ReplicationWriter::Counters wc = writer->counters();
    const repl::SessionRouter::Counters rc = router->counters();
    std::printf(
        "replication: epoch %llu, %llu delta + %llu full ships "
        "(%llu naks, %llu failures), %llu bytes, %zu/%zu replicas up\n"
        "reads: %zu total (ok %llu, unknown-root %llu, error %llu), "
        "replica-served %llu, failovers %llu, stale %llu\n"
        "read latency us: p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n"
        "cross-check: %llu reads, %llu mismatches, %llu replica-served%s%s\n",
        static_cast<unsigned long long>(writer->epoch()),
        static_cast<unsigned long long>(wc.delta_ships),
        static_cast<unsigned long long>(wc.full_ships),
        static_cast<unsigned long long>(wc.naks),
        static_cast<unsigned long long>(wc.ship_failures +
                                        ship_failures.load()),
        static_cast<unsigned long long>(wc.bytes_sent), writer->up_count(),
        writer->replica_count(), read_lat.size(),
        static_cast<unsigned long long>(reads_ok),
        static_cast<unsigned long long>(reads_unknown),
        static_cast<unsigned long long>(reads_error),
        static_cast<unsigned long long>(rc.replica_reads),
        static_cast<unsigned long long>(rc.failovers),
        static_cast<unsigned long long>(rc.stale_fallbacks), read_pct(0.50),
        read_pct(0.95), read_pct(0.99), read_pct(1.0),
        static_cast<unsigned long long>(check_reads),
        static_cast<unsigned long long>(check_mismatches),
        static_cast<unsigned long long>(check_replica_reads),
        check_error.empty() ? "" : ", error: ", check_error.c_str());
  }
  if (cli.checkpoint_every > 0) {
    std::printf(
        "checkpoints: %llu saved (%llu failed), %llu bytes, "
        "pause us: p95 %.1f  max %.1f  last %.1f\n",
        static_cast<unsigned long long>(m.snapshots_saved),
        static_cast<unsigned long long>(m.snapshot_failures),
        static_cast<unsigned long long>(m.snapshot_bytes_written),
        static_cast<double>(m.snapshot_pause_ns_p95) / 1000.0,
        static_cast<double>(m.snapshot_pause_ns_max) / 1000.0,
        static_cast<double>(m.snapshot_pause_ns_last) / 1000.0);
  }

  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"service_loadgen\",\n"
        << "  \"sessions\": " << cli.sessions << ",\n"
        << "  \"passes\": " << cli.passes << ",\n"
        << "  \"workers\": " << cli.workers << ",\n"
        << "  \"wall_s\": " << wall_s << ",\n"
        << "  \"requests\": {\"total\": " << lat.size() << ", \"ok\": " << ok
        << ", \"non_ok\": " << non_ok << "},\n"
        << "  \"latency_us\": {\"p50\": " << pct(0.50)
        << ", \"p95\": " << pct(0.95) << ", \"p99\": " << pct(0.99)
        << ", \"max\": " << pct(1.0) << ", \"mean\": " << mean_us << "},\n"
        << "  \"throughput\": {\"requests_per_s\": "
        << (wall_s > 0 ? static_cast<double>(lat.size()) / wall_s : 0.0)
        << ", \"ops_per_s\": "
        << (wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0) << "},\n"
        << "  \"fault\": {\"enabled\": " << (cli.fault ? 1 : 0)
        << ", \"campaigns\": " << m.fault_campaigns_completed
        << ", \"cancelled\": " << m.fault_campaigns_cancelled
        << ", \"faults\": " << m.fault_faults_evaluated
        << ", \"detected\": " << m.fault_faults_detected
        << ", \"equivalent\": " << m.fault_faults_equivalent << "},\n"
        << "  \"snapshot\": {\"checkpoint_every\": " << cli.checkpoint_every
        << ", \"saved\": " << m.snapshots_saved
        << ", \"failures\": " << m.snapshot_failures
        << ", \"bytes\": " << m.snapshot_bytes_written
        << ", \"pause_us\": {\"p95\": "
        << static_cast<double>(m.snapshot_pause_ns_p95) / 1000.0
        << ", \"max\": "
        << static_cast<double>(m.snapshot_pause_ns_max) / 1000.0
        << ", \"last\": "
        << static_cast<double>(m.snapshot_pause_ns_last) / 1000.0 << "}},\n";
    if (repl_on) {
      const repl::ReplicationWriter::Counters wc = writer->counters();
      const repl::SessionRouter::Counters rc = router->counters();
      out << "  \"replication\": {\"read_ratio\": " << cli.read_ratio
          << ", \"replicas\": " << writer->replica_count()
          << ", \"replicas_up\": " << writer->up_count()
          << ", \"epoch\": " << writer->epoch()
          << ", \"delta_ships\": " << wc.delta_ships
          << ", \"full_ships\": " << wc.full_ships
          << ", \"naks\": " << wc.naks
          << ", \"ship_failures\": " << (wc.ship_failures +
                                         ship_failures.load())
          << ", \"bytes_sent\": " << wc.bytes_sent
          << ", \"reconnects\": " << wc.reconnects
          << ",\n    \"reads\": {\"total\": " << read_lat.size()
          << ", \"ok\": " << reads_ok
          << ", \"unknown_root\": " << reads_unknown
          << ", \"error\": " << reads_error
          << ", \"replica_served\": " << rc.replica_reads
          << ", \"failovers\": " << rc.failovers
          << ", \"stale_fallbacks\": " << rc.stale_fallbacks << "},\n"
          << "    \"read_latency_us\": {\"p50\": " << read_pct(0.50)
          << ", \"p95\": " << read_pct(0.95)
          << ", \"p99\": " << read_pct(0.99)
          << ", \"max\": " << read_pct(1.0) << "},\n"
          << "    \"build_latency_us\": {\"p50\": " << pct(0.50)
          << ", \"p95\": " << pct(0.95) << ", \"p99\": " << pct(0.99)
          << ", \"max\": " << pct(1.0) << "},\n"
          << "    \"crosscheck\": {\"reads\": " << check_reads
          << ", \"mismatches\": " << check_mismatches
          << ", \"replica_served\": " << check_replica_reads << "}},\n";
    }
    out << "  \"service\": " << svc.metrics_json() << "\n}\n";
    std::printf("wrote %s\n", cli.json_path.c_str());
  }

  // Hold the endpoints up for external scrapers (CI curls /metrics and
  // /healthz here); SIGINT/SIGTERM cuts the window short.
  if (cli.http && cli.linger_ms > 0) {
    std::printf("pbdd_loadgen: lingering %u ms on http port %u\n",
                cli.linger_ms, http.port());
    std::fflush(stdout);
    const Clock::time_point until =
        Clock::now() + std::chrono::milliseconds(cli.linger_ms);
    while (!g_stop.load() && Clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  http.stop();

  if (!error.empty()) {
    std::fprintf(stderr, "FAIL: %s\n", error.c_str());
    return 1;
  }
  if (sessions_opened.load() != cli.sessions) {
    std::fprintf(stderr, "FAIL: only %u/%u sessions opened\n",
                 sessions_opened.load(), cli.sessions);
    return 1;
  }
  if (min_passes == 0 || ok == 0) {
    std::fprintf(stderr, "FAIL: a session completed no full pass\n");
    return 1;
  }
  if (cli.checkpoint_every > 0 &&
      (m.snapshots_saved == 0 || m.snapshot_failures > 0)) {
    std::fprintf(stderr, "FAIL: checkpointing enabled but %llu saved, %llu failed\n",
                 static_cast<unsigned long long>(m.snapshots_saved),
                 static_cast<unsigned long long>(m.snapshot_failures));
    return 1;
  }
  if (repl_on) {
    if (!check_error.empty()) {
      std::fprintf(stderr, "FAIL: replication cross-check: %s\n",
                   check_error.c_str());
      return 1;
    }
    if (check_mismatches > 0) {
      std::fprintf(stderr,
                   "FAIL: %llu replica answers diverged from the writer\n",
                   static_cast<unsigned long long>(check_mismatches));
      return 1;
    }
  }
  return 0;
}
