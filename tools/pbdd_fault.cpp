// pbdd_fault — stuck-at fault simulation / equivalence checking driver.
//
//   pbdd_fault <circuit> [options]
//
//   <circuit>            a .bench netlist path or a generator spec
//                        (c2670s, c2670b, c3540s, c17, mult-N, add-N, lfsr-N, ...)
//   --workers N          parallel workers (default 1)
//   --discipline D       unique-table discipline: passlock|sharded|lockfree
//   --batch N            faults rebuilt concurrently per wave (default 32)
//   --max-nets N         deterministic sample cap on fault sites (0 = all)
//   --threshold N        evaluation threshold (0 = pure BF)
//   --out FILE           write the report to FILE instead of stdout
//   --verify FILE        regenerate the report and require it to be
//                        byte-identical to FILE (the golden); also checks
//                        both SHA-256 footers. Exit 1 on any difference.
//   --stats              print campaign statistics to stderr
//
// The report (docs/FAULTSIM.md) is a pure function of the circuit and
// --max-nets: byte-identical for any --workers / --discipline / --batch,
// which is what the goldens under tests/goldens/ pin down in CI.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "circuit/bench_io.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "fault/fault.hpp"
#include "fault/report.hpp"

namespace {

using namespace pbdd;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <circuit> [--workers N] [--discipline D] "
               "[--batch N] [--max-nets N]\n"
               "          [--threshold N] [--out FILE] [--verify FILE] "
               "[--stats]\n",
               argv0);
  std::exit(2);
}

circuit::Circuit load_circuit(const std::string& spec) {
  if (spec.size() > 6 && spec.substr(spec.size() - 6) == ".bench") {
    return circuit::parse_bench_file(spec);
  }
  auto num = [&](const char* prefix) {
    return static_cast<unsigned>(
        std::strtoul(spec.c_str() + std::strlen(prefix), nullptr, 10));
  };
  if (spec == "c2670s") return circuit::c2670_like();
  if (spec == "c2670b") return circuit::c2670_big();
  if (spec == "c3540s") return circuit::c3540_like();
  if (spec == "c17") return circuit::c17();
  if (spec.rfind("mult-", 0) == 0) return circuit::multiplier(num("mult-"));
  if (spec.rfind("alu-", 0) == 0) return circuit::alu(num("alu-"));
  if (spec.rfind("cmp-", 0) == 0) return circuit::comparator(num("cmp-"));
  if (spec.rfind("add-", 0) == 0) {
    return circuit::carry_select_adder(num("add-"));
  }
  if (spec.rfind("par-", 0) == 0) return circuit::parity_tree(num("par-"));
  if (spec.rfind("henc-", 0) == 0) {
    return circuit::hamming_encoder(num("henc-"));
  }
  if (spec.rfind("hdec-", 0) == 0) {
    return circuit::hamming_decoder(num("hdec-"));
  }
  if (spec.rfind("bshift-", 0) == 0) {
    return circuit::barrel_shifter(num("bshift-"));
  }
  if (spec.rfind("prienc-", 0) == 0) {
    return circuit::priority_encoder(num("prienc-"));
  }
  if (spec.rfind("shreg-", 0) == 0) {
    return circuit::shift_register(num("shreg-"));
  }
  if (spec.rfind("lfsr-", 0) == 0) {
    const unsigned bits = num("lfsr-");
    return circuit::lfsr(bits, {bits - 1, bits - 2});
  }
  if (spec.rfind("gray-", 0) == 0) return circuit::gray_counter(num("gray-"));
  if (spec.rfind("rand-", 0) == 0) {
    return circuit::random_circuit(24, 600, num("rand-"));
  }
  throw std::runtime_error("unknown circuit spec '" + spec + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string spec = argv[1];
  core::Config config;
  fault::FaultSimOptions fopts;
  std::string out_path;
  std::string verify_path;
  bool print_stats = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--workers" || arg == "--threads") {
      config.workers = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--discipline") {
      const std::string d = next();
      if (d == "passlock") {
        config.table_discipline = core::TableDiscipline::kPassLock;
      } else if (d == "sharded") {
        config.table_discipline = core::TableDiscipline::kSharded;
      } else if (d == "lockfree") {
        config.table_discipline = core::TableDiscipline::kLockFree;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--batch") {
      fopts.batch_faults = std::strtoul(next().c_str(), nullptr, 10);
      if (fopts.batch_faults == 0) usage(argv[0]);
    } else if (arg == "--max-nets") {
      fopts.max_nets = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--max-active") {
      config.max_active_workers = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--shared-cache") {
      config.shared_cache_log2 = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--shared-levels") {
      config.shared_cache_levels = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--threshold") {
      const auto value = std::strtoull(next().c_str(), nullptr, 10);
      config.eval_threshold = value == 0 ? core::Config::kUnbounded : value;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--verify") {
      verify_path = next();
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      usage(argv[0]);
    }
  }

  try {
    const circuit::Circuit raw = load_circuit(spec);
    const circuit::Circuit bin = raw.binarized();
    const std::vector<unsigned> order = circuit::order_dfs(bin);

    std::string report;
    {
      core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()),
                           config);
      fault::FaultCampaign campaign(mgr, bin, order);
      const std::vector<fault::NetFaultResult> results =
          campaign.run(fopts);

      fault::ReportInfo info;
      info.circuit = bin.name();
      info.inputs = bin.inputs().size();
      info.outputs = bin.outputs().size();
      info.gates = bin.num_gates();
      info.total_nets = fault::enumerate_fault_sites(bin).size();
      info.reported_nets = results.size();
      report = fault::render_report(info, results);

      if (print_stats) {
        const fault::CampaignStats& s = campaign.stats();
        std::fprintf(stderr,
                     "%s: %llu nets, %llu faults (%llu detected, %llu "
                     "equivalent), %llu waves, %llu batches (%llu golden), "
                     "%llu cone ops, %llu miter ops\n",
                     bin.name().c_str(),
                     static_cast<unsigned long long>(s.nets),
                     static_cast<unsigned long long>(s.faults_evaluated),
                     static_cast<unsigned long long>(s.faults_detected),
                     static_cast<unsigned long long>(s.faults_equivalent),
                     static_cast<unsigned long long>(s.waves),
                     static_cast<unsigned long long>(s.batches),
                     static_cast<unsigned long long>(s.golden_batches),
                     static_cast<unsigned long long>(s.cone_ops),
                     static_cast<unsigned long long>(s.miter_ops));
        const core::ManagerStats ms = mgr.stats();
        const core::WorkerStats& t = ms.total;
        std::fprintf(stderr,
                     "engine: %llu expansions, %llu/%llu cache hits, "
                     "%llu shared hits, %llu nodes, %llu stalls, "
                     "%llu groups stolen, %llu gc runs | expansion %.2fs "
                     "reduction %.2fs lock-wait %.2fs gc %.2fs\n",
                     static_cast<unsigned long long>(t.ops_performed),
                     static_cast<unsigned long long>(t.cache_hits),
                     static_cast<unsigned long long>(t.cache_lookups),
                     static_cast<unsigned long long>(t.cache_shared_hits),
                     static_cast<unsigned long long>(t.nodes_created),
                     static_cast<unsigned long long>(t.reduction_stalls),
                     static_cast<unsigned long long>(t.groups_stolen),
                     static_cast<unsigned long long>(ms.gc_runs),
                     static_cast<double>(t.expansion_ns) * 1e-9,
                     static_cast<double>(t.reduction_ns) * 1e-9,
                     static_cast<double>(t.lock_wait_ns) * 1e-9,
                     static_cast<double>(t.gc_ns) * 1e-9);
      }
    }

    std::string verify_error;
    if (!fault::verify_report(report, &verify_error)) {
      std::fprintf(stderr, "error: generated report fails self-check: %s\n",
                   verify_error.c_str());
      return 1;
    }

    if (!verify_path.empty()) {
      std::ifstream in(verify_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", verify_path.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string golden = std::move(buf).str();
      if (!fault::verify_report(golden, &verify_error)) {
        std::fprintf(stderr, "error: golden %s fails verification: %s\n",
                     verify_path.c_str(), verify_error.c_str());
        return 1;
      }
      if (golden != report) {
        std::fprintf(stderr,
                     "error: report differs from golden %s (%zu vs %zu "
                     "bytes)\n",
                     verify_path.c_str(), report.size(), golden.size());
        return 1;
      }
      std::fprintf(stderr, "verified: report matches %s\n",
                   verify_path.c_str());
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + out_path);
      out << report;
      std::fprintf(stderr, "wrote %s (%zu bytes)\n", out_path.c_str(),
                   report.size());
    } else if (verify_path.empty()) {
      std::cout << report;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
