// pbdd_trace — offline analyzer for Tracer Chrome-trace-event exports.
//
//   pbdd_trace <trace.json> [--report all|phases|steal|locks|imbalance|gc|summary]
//
// Reads a trace written by `pbdd_cli --trace` / `pbdd_loadgen --trace` (or
// any conforming Chrome trace) and prints the paper's evaluation views:
// per-worker phase breakdown (Figs. 13/14), steal-latency histogram,
// per-variable lock tables (Figs. 16/17), load imbalance, and GC phase
// shares (Figs. 18/19).
//
// Exit codes: 0 on success, 1 on parse/schema errors, 2 on bad usage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_analysis.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> "
               "[--report all|phases|steal|locks|imbalance|gc|summary]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string path = argv[1];
  std::string report = "all";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report = argv[++i];
    } else {
      usage(argv[0]);
    }
  }
  const bool all = report == "all";
  if (!all && report != "phases" && report != "steal" && report != "locks" &&
      report != "imbalance" && report != "gc" && report != "summary") {
    usage(argv[0]);
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  pbdd::obs::ParsedTrace trace;
  try {
    trace = pbdd::obs::parse_chrome_trace(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  std::string out;
  if (all || report == "summary") out += pbdd::obs::summary_report(trace);
  if (all || report == "phases") out += pbdd::obs::phase_report(trace);
  if (all || report == "gc") out += pbdd::obs::gc_report(trace);
  if (all || report == "steal") out += pbdd::obs::steal_report(trace);
  if (all || report == "locks") out += pbdd::obs::lock_report(trace);
  if (all || report == "imbalance") {
    out += pbdd::obs::imbalance_report(trace);
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}
