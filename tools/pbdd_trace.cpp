// pbdd_trace — offline analyzer for Tracer Chrome-trace-event exports.
//
//   pbdd_trace <trace.json> [--report all|phases|steal|locks|imbalance|gc|summary]
//   pbdd_trace --merge writer.json r1.json [r2.json ...] [--out merged.json]
//
// Reads a trace written by `pbdd_cli --trace` / `pbdd_loadgen --trace` (or
// any conforming Chrome trace) and prints the paper's evaluation views:
// per-worker phase breakdown (Figs. 13/14), steal-latency histogram,
// per-variable lock tables (Figs. 16/17), load imbalance, and GC phase
// shares (Figs. 18/19).
//
// --merge stitches per-process exports (one writer + N replicas) into a
// single Perfetto-loadable timeline: clocks are aligned (handshake offsets
// when present, export wall anchors otherwise), pids are remapped, and flow
// events connect each ship to its apply and each routed read to the replica
// serve. The first file is the reference (writer) process. The fleet report
// — per-replica apply lag, routed-read fan-out — prints to stdout; --out
// writes the merged JSON.
//
// Exit codes: 0 on success, 1 on parse/schema errors, 2 on bad usage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> "
               "[--report all|phases|steal|locks|imbalance|gc|summary]\n"
               "       %s --merge writer.json r1.json [r2.json ...] "
               "[--out merged.json]\n",
               argv0, argv0);
  std::exit(2);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int run_merge(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) usage(argv[0]);

  std::vector<std::string> texts(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!read_file(paths[i], texts[i])) {
      std::fprintf(stderr, "error: cannot read %s\n", paths[i].c_str());
      return 1;
    }
  }

  pbdd::obs::MergeResult merged;
  try {
    merged = pbdd::obs::merge_traces(texts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: merge: %s\n", e.what());
    return 1;
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << merged.json;
  }
  std::fputs(merged.report.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  if (std::strcmp(argv[1], "--merge") == 0) return run_merge(argc, argv);

  const std::string path = argv[1];
  std::string report = "all";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report = argv[++i];
    } else {
      usage(argv[0]);
    }
  }
  const bool all = report == "all";
  if (!all && report != "phases" && report != "steal" && report != "locks" &&
      report != "imbalance" && report != "gc" && report != "summary") {
    usage(argv[0]);
  }

  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }

  pbdd::obs::ParsedTrace trace;
  try {
    trace = pbdd::obs::parse_chrome_trace(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  std::string out;
  if (all || report == "summary") out += pbdd::obs::summary_report(trace);
  if (all || report == "phases") out += pbdd::obs::phase_report(trace);
  if (all || report == "gc") out += pbdd::obs::gc_report(trace);
  if (all || report == "steal") out += pbdd::obs::steal_report(trace);
  if (all || report == "locks") out += pbdd::obs::lock_report(trace);
  if (all || report == "imbalance") {
    out += pbdd::obs::imbalance_report(trace);
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}
