#!/usr/bin/env python3
"""Tracing-overhead gate for CI.

Compares two fig07_08_elapsed --json artifacts: one from the default build
(tracing compiled in but idle, PBDD_TRACE=ON) and one from a PBDD_TRACE=OFF
build. The compiled-in-but-idle cost per instrumentation point is one
relaxed atomic load, so the two runs must agree to within the threshold.

Usage:
  trace_overhead_gate.py --on on.json [on2.json ...] \
                         --off off.json [off2.json ...] \
                         [--threshold 0.03] [--out BENCH_trace_overhead.json]

Multiple files per side are treated as repetitions: the per-(config,circuit)
cell takes the minimum elapsed time of its side (the classic best-of-N
noise filter). The gate fails (exit 1) when the geometric-mean ratio
ON/OFF across all common cells exceeds 1 + threshold; the per-cell max is
reported but only warns, since single cells on shared CI runners are noisy.
"""

import argparse
import json
import math
import sys


def load_cells(paths):
    """{(config, circuit): min elapsed_s} across the given artifacts.

    Two artifact shapes are accepted: fig07_08_elapsed files with a
    results[] array of (config, circuit, elapsed_s) records, and
    pbdd_loadgen --json files ("bench": "service_loadgen"), which
    contribute one ("service", "loadgen") cell from their wall_s — that
    cell gates the trace-context plumbing on the full service path
    (admission, dispatch, checkpoint, ship), not just the engine.
    """
    cells = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        if doc.get("bench") == "service_loadgen":
            wall = float(doc.get("wall_s", 0.0))
            if wall <= 0:
                sys.exit(f"error: {path}: non-positive wall_s")
            key = ("service", "loadgen")
            cells[key] = min(cells.get(key, wall), wall)
            continue
        results = doc.get("results")
        if not isinstance(results, list) or not results:
            sys.exit(f"error: {path}: no results[] array")
        for rec in results:
            key = (rec["config"], rec["circuit"])
            elapsed = float(rec["elapsed_s"])
            if elapsed <= 0:
                sys.exit(f"error: {path}: non-positive elapsed_s for {key}")
            cells[key] = min(cells.get(key, elapsed), elapsed)
    return cells


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--on", nargs="+", required=True,
                    help="artifacts from the PBDD_TRACE=ON (idle) build")
    ap.add_argument("--off", nargs="+", required=True,
                    help="artifacts from the PBDD_TRACE=OFF build")
    ap.add_argument("--threshold", type=float, default=0.03,
                    help="allowed geomean overhead (default 0.03 = 3%%)")
    ap.add_argument("--out", default=None,
                    help="write the comparison as a JSON artifact")
    args = ap.parse_args()

    on = load_cells(args.on)
    off = load_cells(args.off)
    common = sorted(set(on) & set(off))
    if not common:
        sys.exit("error: the ON and OFF artifacts share no (config, circuit) "
                 "cells")

    rows = []
    log_sum = 0.0
    worst = None
    for key in common:
        ratio = on[key] / off[key]
        log_sum += math.log(ratio)
        rows.append({"config": key[0], "circuit": key[1],
                     "on_s": on[key], "off_s": off[key],
                     "ratio": round(ratio, 4)})
        if worst is None or ratio > worst[1]:
            worst = (key, ratio)
    geomean = math.exp(log_sum / len(common))

    print(f"tracing-overhead gate: {len(common)} cells, "
          f"geomean ON/OFF = {geomean:.4f} "
          f"(threshold {1 + args.threshold:.4f})")
    for row in rows:
        print(f"  {row['config']:<12} {row['circuit']:<12} "
              f"on {row['on_s']:.3f}s  off {row['off_s']:.3f}s  "
              f"ratio {row['ratio']:.3f}")
    if worst[1] > 1 + args.threshold:
        print(f"  note: worst cell {worst[0]} at {worst[1]:.3f} "
              f"(cell-level noise is not gated)")

    passed = geomean <= 1 + args.threshold
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump({"bench": "trace_overhead",
                       "threshold": args.threshold,
                       "geomean_ratio": round(geomean, 4),
                       "passed": passed,
                       "cells": rows}, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")

    if not passed:
        print(f"FAIL: idle tracing costs {100 * (geomean - 1):.1f}% "
              f"(> {100 * args.threshold:.0f}%)")
        return 1
    print("OK: idle tracing within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
