// pbdd_gen — emit any generator circuit as an ISCAS-style .bench netlist.
//
//   pbdd_gen <spec> [out.bench]
//
// Specs are the same as pbdd_cli's (mult-N, alu-N, cmp-N, add-N, par-N,
// henc-N, hdec-N, bshift-N, prienc-N, rand-N, c2670s, c3540s, c17) plus the
// sequential generators (shreg-N, lfsr-N, gray-N), which emit DFF latches.
// With no output file the netlist goes to stdout. Lets the workloads of
// this repository interoperate with other tools, and lets other tools'
// netlists be compared against these generators.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "circuit/bench_io.hpp"
#include "circuit/generators.hpp"

namespace {

using namespace pbdd;

circuit::Circuit make(const std::string& spec) {
  auto num = [&](const char* prefix) {
    return static_cast<unsigned>(
        std::strtoul(spec.c_str() + std::strlen(prefix), nullptr, 10));
  };
  if (spec == "c2670s") return circuit::c2670_like();
  if (spec == "c2670b") return circuit::c2670_big();
  if (spec == "c3540s") return circuit::c3540_like();
  if (spec == "c17") return circuit::c17();
  if (spec.rfind("mult-", 0) == 0) return circuit::multiplier(num("mult-"));
  if (spec.rfind("alu-", 0) == 0) return circuit::alu(num("alu-"));
  if (spec.rfind("cmp-", 0) == 0) return circuit::comparator(num("cmp-"));
  if (spec.rfind("add-", 0) == 0) {
    return circuit::carry_select_adder(num("add-"));
  }
  if (spec.rfind("par-", 0) == 0) return circuit::parity_tree(num("par-"));
  if (spec.rfind("henc-", 0) == 0) {
    return circuit::hamming_encoder(num("henc-"));
  }
  if (spec.rfind("hdec-", 0) == 0) {
    return circuit::hamming_decoder(num("hdec-"));
  }
  if (spec.rfind("bshift-", 0) == 0) {
    return circuit::barrel_shifter(num("bshift-"));
  }
  if (spec.rfind("prienc-", 0) == 0) {
    return circuit::priority_encoder(num("prienc-"));
  }
  if (spec.rfind("shreg-", 0) == 0) {
    return circuit::shift_register(num("shreg-"));
  }
  if (spec.rfind("lfsr-", 0) == 0) {
    const unsigned bits = num("lfsr-");
    return circuit::lfsr(bits, {bits - 1, bits - 2});
  }
  if (spec.rfind("gray-", 0) == 0) return circuit::gray_counter(num("gray-"));
  if (spec.rfind("rand-", 0) == 0) {
    return circuit::random_circuit(24, 600, num("rand-"));
  }
  throw std::runtime_error("unknown circuit spec '" + spec + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <spec> [out.bench]\n", argv[0]);
    return 2;
  }
  try {
    const circuit::Circuit c = make(argv[1]);
    if (argc == 3) {
      std::ofstream out(argv[2]);
      if (!out) throw std::runtime_error(std::string("cannot write ") +
                                         argv[2]);
      circuit::write_bench(out, c);
      std::fprintf(stderr, "%s: %zu gates, %zu inputs, %zu outputs, %zu latches -> %s\n",
                   c.name().c_str(), c.num_gates(), c.inputs().size(),
                   c.outputs().size(), c.latches().size(), argv[2]);
    } else {
      circuit::write_bench(std::cout, c);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
