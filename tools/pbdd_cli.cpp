// pbdd — command-line driver: build the BDDs of a circuit and report.
//
//   pbdd_cli <circuit> [options]
//
//   <circuit>            a .bench netlist path or a generator spec
//                        (c2670s, c3540s, c17, mult-N, alu-N, cmp-N, add-N,
//                        par-N, rand-N)
//   --threads N          parallel workers (default 1)
//   --seq                dedicated sequential mode (lock elision)
//   --threshold N        evaluation threshold (default 32768; 0 = pure BF)
//   --group N            steal-group size
//   --order dfs|natural  variable order (default dfs = SIS order_dfs)
//   --stats              print the engine statistics report
//   --dot FILE           write the output BDDs as Graphviz DOT
//   --counts             print per-output node counts
//   --sat                print per-output satisfying-assignment counts
//
// Examples:
//   pbdd_cli mult-12 --threads 8 --stats
//   pbdd_cli /path/C2670.bench --order dfs --counts
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "circuit/bench_io.hpp"
#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "core/export.hpp"
#include "util/timer.hpp"

namespace {

using namespace pbdd;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <circuit> [--threads N] [--seq] [--threshold N] "
               "[--group N]\n"
               "          [--order dfs|natural] [--stats] [--dot FILE] "
               "[--counts] [--sat]\n",
               argv0);
  std::exit(2);
}

circuit::Circuit load_circuit(const std::string& spec) {
  if (spec.size() > 6 && spec.substr(spec.size() - 6) == ".bench") {
    return circuit::parse_bench_file(spec);
  }
  auto num = [&](const char* prefix) {
    return static_cast<unsigned>(
        std::strtoul(spec.c_str() + std::strlen(prefix), nullptr, 10));
  };
  if (spec == "c2670s") return circuit::c2670_like();
  if (spec == "c3540s") return circuit::c3540_like();
  if (spec == "c17") return circuit::c17();
  if (spec.rfind("mult-", 0) == 0) return circuit::multiplier(num("mult-"));
  if (spec.rfind("alu-", 0) == 0) return circuit::alu(num("alu-"));
  if (spec.rfind("cmp-", 0) == 0) return circuit::comparator(num("cmp-"));
  if (spec.rfind("add-", 0) == 0) {
    return circuit::carry_select_adder(num("add-"));
  }
  if (spec.rfind("par-", 0) == 0) return circuit::parity_tree(num("par-"));
  if (spec.rfind("henc-", 0) == 0) return circuit::hamming_encoder(num("henc-"));
  if (spec.rfind("hdec-", 0) == 0) return circuit::hamming_decoder(num("hdec-"));
  if (spec.rfind("bshift-", 0) == 0) return circuit::barrel_shifter(num("bshift-"));
  if (spec.rfind("prienc-", 0) == 0) return circuit::priority_encoder(num("prienc-"));
  if (spec.rfind("rand-", 0) == 0) {
    return circuit::random_circuit(24, 600, num("rand-"));
  }
  throw std::runtime_error("unknown circuit spec '" + spec + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string spec = argv[1];
  core::Config config;
  bool want_stats = false, want_counts = false, want_sat = false;
  std::string dot_path;
  std::string order_kind = "dfs";

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--threads") {
      config.workers = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--seq") {
      config.workers = 1;
      config.sequential_mode = true;
    } else if (arg == "--threshold") {
      const auto value = std::strtoull(next().c_str(), nullptr, 10);
      config.eval_threshold =
          value == 0 ? core::Config::kUnbounded : value;
    } else if (arg == "--group") {
      config.group_size = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--order") {
      order_kind = next();
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--counts") {
      want_counts = true;
    } else if (arg == "--sat") {
      want_sat = true;
    } else if (arg == "--dot") {
      dot_path = next();
    } else {
      usage(argv[0]);
    }
  }

  try {
    const circuit::Circuit raw = load_circuit(spec);
    const circuit::Circuit bin = raw.binarized();
    const std::vector<unsigned> order = order_kind == "natural"
                                            ? circuit::order_natural(bin)
                                            : circuit::order_dfs(bin);
    std::printf("%s: %zu gates, %zu inputs, %zu outputs (%s order)\n",
                raw.name().c_str(), raw.num_gates(), raw.inputs().size(),
                raw.outputs().size(), order_kind.c_str());

    core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
    util::WallTimer timer;
    circuit::BuildStats build_stats;
    const std::vector<core::Bdd> outputs =
        circuit::build_parallel(mgr, bin, order, &build_stats);
    const double elapsed = timer.elapsed_s();

    std::size_t total_nodes = 0;
    for (const core::Bdd& out : outputs) total_nodes += mgr.node_count(out);
    std::printf(
        "built %zu output BDDs in %.3fs: %zu summed nodes, %zu live, "
        "%.1f MB peak, %llu ops, %llu batches, %llu collections\n",
        outputs.size(), elapsed, total_nodes, mgr.live_nodes(),
        static_cast<double>(mgr.peak_bytes()) / 1048576.0,
        static_cast<unsigned long long>(mgr.stats().total.ops_performed),
        static_cast<unsigned long long>(build_stats.batches),
        static_cast<unsigned long long>(mgr.gc_runs()));

    if (want_counts || want_sat) {
      for (std::size_t o = 0; o < outputs.size(); ++o) {
        std::printf("  %-12s", bin.output_names()[o].c_str());
        if (want_counts) {
          std::printf(" nodes=%zu", mgr.node_count(outputs[o]));
        }
        if (want_sat) {
          std::printf(" satcount=%.6g", mgr.sat_count(outputs[o]));
        }
        std::printf("\n");
      }
    }
    if (want_stats) core::write_stats(std::cout, mgr);
    if (!dot_path.empty()) {
      std::ofstream dot(dot_path);
      if (!dot) throw std::runtime_error("cannot write " + dot_path);
      core::write_dot(dot, mgr, outputs, bin.output_names());
      std::printf("wrote %s\n", dot_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
