// pbdd — command-line driver: build the BDDs of a circuit and report.
//
//   pbdd_cli <circuit> [options]
//
//   <circuit>            a .bench netlist path or a generator spec
//                        (c2670s, c2670b, c3540s, c17, mult-N, alu-N, cmp-N, add-N,
//                        par-N, rand-N)
//   --threads N          parallel workers (default 1)
//   --seq                dedicated sequential mode (lock elision)
//   --threshold N        evaluation threshold (default 32768; 0 = pure BF)
//   --group N            steal-group size
//   --order dfs|natural  variable order (default dfs = SIS order_dfs)
//   --stats              print the engine statistics report
//   --dot FILE           write the output BDDs as Graphviz DOT
//   --counts             print per-output node counts
//   --sat                print per-output satisfying-assignment counts
//   --save FILE          checkpoint the built store to FILE (docs/FORMAT.md)
//   --trace FILE         record a per-worker event trace of the run and
//                        write Chrome-trace-event JSON (open in
//                        ui.perfetto.dev; analyze with pbdd_trace)
//   --mem-budget N       out-of-core paging: demote cold levels to disk at
//                        each batch barrier until at most N node slots stay
//                        resident (docs/OOC.md); needs --spill-dir
//   --spill-dir DIR      directory for spill segments (must exist)
//
//   pbdd_cli --load FILE [options]
//                        restore a checkpoint instead of building; the
//                        report flags above apply to the restored roots,
//                        and --threads/--save work (restore under a
//                        different worker count, re-save, ...)
//
//   pbdd_cli --inspect FILE
//                        print a snapshot's header and per-level CRC table
//                        (the column the replication tier diffs; two saves
//                        of the same function produce equal rows exactly on
//                        the levels that did not change)
//
// Examples:
//   pbdd_cli mult-12 --threads 8 --stats
//   pbdd_cli /path/C2670.bench --order dfs --counts
//   pbdd_cli mult-12 --threads 8 --save mult12.snap
//   pbdd_cli --load mult12.snap --threads 4 --counts
//   pbdd_cli --inspect mult12.snap
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "circuit/bench_io.hpp"
#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "core/export.hpp"
#include "obs/trace.hpp"
#include "ooc/level_pager.hpp"
#include "snapshot/snapshot.hpp"
#include "util/timer.hpp"

namespace {

using namespace pbdd;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <circuit> [--threads N] [--seq] [--threshold N] "
               "[--group N]\n"
               "          [--order dfs|natural] [--stats] [--dot FILE] "
               "[--counts] [--sat] [--save FILE] [--trace FILE]\n"
               "          [--mem-budget N --spill-dir DIR]\n"
               "       %s --load FILE [--threads N] [--stats] [--dot FILE] "
               "[--counts] [--sat] [--save FILE] [--trace FILE]\n"
               "       %s --inspect FILE\n",
               argv0, argv0, argv0);
  std::exit(2);
}

circuit::Circuit load_circuit(const std::string& spec) {
  if (spec.size() > 6 && spec.substr(spec.size() - 6) == ".bench") {
    return circuit::parse_bench_file(spec);
  }
  auto num = [&](const char* prefix) {
    return static_cast<unsigned>(
        std::strtoul(spec.c_str() + std::strlen(prefix), nullptr, 10));
  };
  if (spec == "c2670s") return circuit::c2670_like();
  if (spec == "c2670b") return circuit::c2670_big();
  if (spec == "c3540s") return circuit::c3540_like();
  if (spec == "c17") return circuit::c17();
  if (spec.rfind("mult-", 0) == 0) return circuit::multiplier(num("mult-"));
  if (spec.rfind("alu-", 0) == 0) return circuit::alu(num("alu-"));
  if (spec.rfind("cmp-", 0) == 0) return circuit::comparator(num("cmp-"));
  if (spec.rfind("add-", 0) == 0) {
    return circuit::carry_select_adder(num("add-"));
  }
  if (spec.rfind("par-", 0) == 0) return circuit::parity_tree(num("par-"));
  if (spec.rfind("henc-", 0) == 0) return circuit::hamming_encoder(num("henc-"));
  if (spec.rfind("hdec-", 0) == 0) return circuit::hamming_decoder(num("hdec-"));
  if (spec.rfind("bshift-", 0) == 0) return circuit::barrel_shifter(num("bshift-"));
  if (spec.rfind("prienc-", 0) == 0) return circuit::priority_encoder(num("prienc-"));
  if (spec.rfind("rand-", 0) == 0) {
    return circuit::random_circuit(24, 600, num("rand-"));
  }
  throw std::runtime_error("unknown circuit spec '" + spec + "'");
}

struct Report {
  bool stats = false, counts = false, sat = false;
  std::string dot_path;
  std::string save_path;
};

// Shared tail of both modes: per-root report, stats, DOT, optional re-save.
void report(core::BddManager& mgr, const std::vector<core::Bdd>& outputs,
            const std::vector<std::string>& names, const Report& rep) {
  if (rep.counts || rep.sat) {
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      std::printf("  %-12s", names[o].c_str());
      if (rep.counts) std::printf(" nodes=%zu", mgr.node_count(outputs[o]));
      if (rep.sat) std::printf(" satcount=%.6g", mgr.sat_count(outputs[o]));
      std::printf("\n");
    }
  }
  if (rep.stats) core::write_stats(std::cout, mgr);
  if (!rep.dot_path.empty()) {
    std::ofstream dot(rep.dot_path);
    if (!dot) throw std::runtime_error("cannot write " + rep.dot_path);
    core::write_dot(dot, mgr, outputs, names);
    std::printf("wrote %s\n", rep.dot_path.c_str());
  }
  if (!rep.save_path.empty()) {
    std::vector<snapshot::NamedRoot> named;
    named.reserve(outputs.size());
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      named.push_back({names[o], outputs[o]});
    }
    const snapshot::SaveStats s = snapshot::save(mgr, rep.save_path, named);
    std::printf("saved %s: %llu bytes, %llu nodes, %u roots in %.1f ms\n",
                rep.save_path.c_str(),
                static_cast<unsigned long long>(s.bytes),
                static_cast<unsigned long long>(s.nodes), s.roots,
                static_cast<double>(s.total_ns) / 1e6);
  }
}

const char* discipline_name(core::TableDiscipline d) {
  switch (d) {
    case core::TableDiscipline::kPassLock: return "pass-lock";
    case core::TableDiscipline::kSharded: return "sharded";
    case core::TableDiscipline::kLockFree: return "lock-free";
  }
  return "?";
}

int run_inspect(const std::string& path) {
  const snapshot::LevelDirectory dir = snapshot::inspect_levels(path);
  const snapshot::SnapshotInfo& info = dir.info;
  std::printf("%s: PBDDSNAP v%u, %s%s\n", path.c_str(), info.version,
              info.export_mode() ? "export-roots" : "full-store",
              info.has_chains() ? " (+chains)" : "");
  std::printf(
      "  %u vars, %u workers, %s discipline, %u shards\n"
      "  %llu nodes, %u roots, %llu file bytes "
      "(meta %llu, root table %llu @ %llu)\n",
      info.num_vars, info.workers, discipline_name(info.discipline),
      info.table_shards, static_cast<unsigned long long>(info.total_nodes),
      info.root_count, static_cast<unsigned long long>(info.file_bytes),
      static_cast<unsigned long long>(dir.meta_bytes()),
      static_cast<unsigned long long>(dir.root_table_bytes),
      static_cast<unsigned long long>(dir.root_table_offset));
  std::printf("  %-5s %-12s %-12s %-10s %s\n", "level", "offset", "bytes",
              "nodes", "crc32");
  for (std::size_t v = 0; v < dir.levels.size(); ++v) {
    const snapshot::LevelDirEntry& e = dir.levels[v];
    std::printf("  %-5zu %-12llu %-12llu %-10u %08x\n", v,
                static_cast<unsigned long long>(e.offset),
                static_cast<unsigned long long>(e.byte_size), e.node_count,
                e.crc);
  }
  return 0;
}

int run_load(const std::string& path, const core::Config& config,
             const Report& rep) {
  util::WallTimer timer;
  snapshot::RestoreResult res = snapshot::restore(path, config);
  core::BddManager& mgr = *res.manager;
  std::printf(
      "restored %s in %.3fs: %u vars, %llu nodes (%u roots), "
      "%s restore, %u/%u levels chain-adopted\n",
      path.c_str(), timer.elapsed_s(), mgr.num_vars(),
      static_cast<unsigned long long>(res.stats.nodes),
      res.stats.roots, res.stats.ref_preserving ? "ref-preserving" : "rehashed",
      res.stats.levels_adopted, res.stats.levels);
  std::vector<core::Bdd> outputs;
  std::vector<std::string> names;
  for (snapshot::NamedRoot& nr : res.roots) {
    names.push_back(nr.name);
    outputs.push_back(std::move(nr.bdd));
  }
  report(mgr, outputs, names, rep);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string spec = argv[1];
  core::Config config;
  Report rep;
  std::string load_path;
  std::string trace_path;
  std::string order_kind = "dfs";
  std::string spill_dir;
  std::size_t mem_budget = 0;
  int first_opt = 2;
  if (spec == "--load") {
    if (argc < 3) usage(argv[0]);
    load_path = argv[2];
    first_opt = 3;
  } else if (spec == "--inspect") {
    if (argc != 3) usage(argv[0]);
    try {
      return run_inspect(argv[2]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  for (int i = first_opt; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--threads") {
      config.workers = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--seq") {
      config.workers = 1;
      config.sequential_mode = true;
    } else if (arg == "--threshold") {
      const auto value = std::strtoull(next().c_str(), nullptr, 10);
      config.eval_threshold =
          value == 0 ? core::Config::kUnbounded : value;
    } else if (arg == "--group") {
      config.group_size = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--order") {
      order_kind = next();
    } else if (arg == "--stats") {
      rep.stats = true;
    } else if (arg == "--counts") {
      rep.counts = true;
    } else if (arg == "--sat") {
      rep.sat = true;
    } else if (arg == "--dot") {
      rep.dot_path = next();
    } else if (arg == "--save") {
      rep.save_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--mem-budget") {
      mem_budget = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--spill-dir") {
      spill_dir = next();
    } else {
      usage(argv[0]);
    }
  }

  if (!trace_path.empty()) {
    if (!obs::trace_compiled()) {
      std::fprintf(stderr,
                   "error: --trace needs a build with -DPBDD_TRACE=ON "
                   "(this binary was compiled with tracing off)\n");
      return 2;
    }
    obs::Tracer::instance().start();
  }
  const auto finish_trace = [&] {
    if (trace_path.empty()) return;
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.stop();
    const std::size_t events = tracer.write_chrome_trace_file(trace_path);
    std::printf("wrote %s: %zu trace events from %zu threads\n",
                trace_path.c_str(), events, tracer.collect().threads);
  };

  try {
    if (!load_path.empty()) {
      const int rc = run_load(load_path, config, rep);
      finish_trace();
      return rc;
    }
    const circuit::Circuit raw = load_circuit(spec);
    const circuit::Circuit bin = raw.binarized();
    const std::vector<unsigned> order = order_kind == "natural"
                                            ? circuit::order_natural(bin)
                                            : circuit::order_dfs(bin);
    std::printf("%s: %zu gates, %zu inputs, %zu outputs (%s order)\n",
                raw.name().c_str(), raw.num_gates(), raw.inputs().size(),
                raw.outputs().size(), order_kind.c_str());

    core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
    std::unique_ptr<ooc::LevelPager> pager;
    if (!spill_dir.empty()) {
      ooc::PagerConfig pc;
      pc.spill_dir = spill_dir;
      pc.node_budget = mem_budget;
      pager = std::make_unique<ooc::LevelPager>(mgr, pc);
      std::printf("paging: spill-dir=%s budget=%zu nodes\n",
                  spill_dir.c_str(), mem_budget);
    } else if (mem_budget != 0) {
      std::fprintf(stderr, "error: --mem-budget needs --spill-dir\n");
      return 2;
    }
    util::WallTimer timer;
    circuit::BuildStats build_stats;
    const std::vector<core::Bdd> outputs =
        circuit::build_parallel(mgr, bin, order, &build_stats);
    const double elapsed = timer.elapsed_s();

    std::size_t total_nodes = 0;
    for (const core::Bdd& out : outputs) total_nodes += mgr.node_count(out);
    std::printf(
        "built %zu output BDDs in %.3fs: %zu summed nodes, %zu live, "
        "%.1f MB peak, %llu ops, %llu batches, %llu collections\n",
        outputs.size(), elapsed, total_nodes, mgr.live_nodes(),
        static_cast<double>(mgr.peak_bytes()) / 1048576.0,
        static_cast<unsigned long long>(mgr.stats().total.ops_performed),
        static_cast<unsigned long long>(build_stats.batches),
        static_cast<unsigned long long>(mgr.gc_runs()));

    if (pager != nullptr) {
      const ooc::PagerStats ps = pager->stats();
      std::printf(
          "paging: %llu demotions, %llu faults (%llu prefetch hits), "
          "%.1f MB written, %.1f MB read, %llu levels on disk\n",
          static_cast<unsigned long long>(ps.demotions),
          static_cast<unsigned long long>(ps.faults),
          static_cast<unsigned long long>(ps.prefetch_hits),
          static_cast<double>(ps.bytes_written) / 1048576.0,
          static_cast<double>(ps.bytes_read) / 1048576.0,
          static_cast<unsigned long long>(ps.spilled_levels));
    }
    if (!rep.save_path.empty()) {
      mgr.gc();  // drop build intermediates so the checkpoint is tight
    }
    report(mgr, outputs, bin.output_names(), rep);
    finish_trace();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
